//! Streaming rule-base maintenance.
//!
//! The batch pipelines answer one question about one frozen database.
//! [`StreamingMiner`] keeps the answer *live* while the database grows:
//! it owns an appendable [`TransactionDb`], a delta-aware engine (see
//! [`rulebases_dataset::engine::delta`]), and the full incremental closed
//! lattice, and [`StreamingMiner::push_batch`] threads one append through
//! all the layers at **delta cost**:
//!
//! 1. the rows land in one fresh storage segment
//!    ([`TransactionDb::append_rows`]) under a new epoch — the snapshot
//!    the engines pin keeps sharing every pre-append segment, so the
//!    append copies O(batch) bytes, never O(database) (the engines'
//!    [`CacheStats::bytes_copied`](rulebases_dataset::CacheStats)
//!    counter pins this);
//! 2. the engine absorbs the [`TxDelta`] incrementally — covers extend,
//!    the closure cache drops only the classes the batch can change
//!    ([`MiningContext::apply_delta`]);
//! 3. each appended transaction is inserted into the lattice GALICIA-style
//!    ([`IncrementalLattice::insert_object_delta`]): supports bump, split
//!    closure classes appear, covers rewire, minimal generators retag —
//!    all by set algebra with **zero** support-engine queries — and the
//!    insertion reports exactly which classes it touched as a
//!    [`LatticeDelta`];
//! 4. the maintained bases are **patched from that touched-class set**:
//!    only a rule whose antecedent/consequent closure classes were
//!    touched (or crossed the rescaled support threshold) can move, so
//!    the Duquenne-Guigues and both Luxenburger bases update — and the
//!    returned [`BasesDelta`] is computed — without materializing and
//!    diffing full rule snapshots. (The snapshot-diff formulation
//!    survives as [`BasesDelta::between`], the test oracle.)
//!
//! The returned [`BasesDelta`] says exactly what changed: closed sets
//! that entered or left the iceberg, and rules added to / removed from /
//! restated in each basis. The batch pipelines are the degenerate case —
//! pushing the whole database as one batch yields bit-for-bit the
//! [`PipelineKind::Fused`] result (the
//! equivalence is property-tested in `tests/streaming.rs` over every
//! engine backend and batch-size schedule, and the per-batch deltas are
//! property-tested against the snapshot-diff oracle).
//!
//! # Windows
//!
//! A session can bound what it remembers with a [`Window`]
//! ([`StreamingMiner::window`]): `Sliding(n)` keeps the newest `n`
//! rows, `Ttl(k)` keeps the rows of the newest `k` batches. After the
//! append phase of a push, the out-of-window prefix *expires* through
//! the same delta machinery in reverse: the engines absorb a
//! [`TxDelta::Expire`] in place (covers drop their head bits, tid-lists
//! and diffsets drain their sorted prefixes, the sharded engine drops
//! fully-expired head shards — see
//! [`rulebases_dataset::engine::delta`]), each expired object is removed
//! from the lattice GALICIA-style in reverse
//! ([`IncrementalLattice::remove_object_delta`]: supports drop, classes
//! whose last witness left merge into their closure, covers rewire by
//! reverse interposition), and one [`BasesDelta`] covering both the
//! appends and the expiries comes back from a single patch pass. The
//! windowed state after every push equals a fresh mine of exactly the
//! window's rows — property-tested in `tests/windowing.rs` over every
//! backend — and no layer ever re-mines or queries the support engine
//! during maintenance.
//!
//! [`TxDelta::Expire`]: rulebases_dataset::TxDelta::Expire
//! [`IncrementalLattice::remove_object_delta`]: rulebases_lattice::IncrementalLattice::remove_object_delta
//!
//! # Example
//!
//! ```
//! use rulebases::{MinSupport, RuleMiner};
//! use rulebases_dataset::paper_example;
//!
//! // Open a stream over the paper's five-object context...
//! let mut stream = RuleMiner::new(MinSupport::Count(2))
//!     .min_confidence(0.5)
//!     .streaming(paper_example());
//! assert_eq!(stream.bases().dg.len(), 3);
//!
//! // ...then two more customers check out.
//! let delta = stream.push_batch(vec![vec![1, 3], vec![2, 3, 5]]).unwrap();
//! assert_eq!(stream.n_objects(), 7);
//! assert_eq!(stream.epoch(), 1);
//! // The maintained bases moved without re-mining: the batch changed
//! // some rules and left the rest alone.
//! assert!(!delta.is_empty());
//! assert_eq!(stream.bases().n_objects, 7);
//! ```
//!
//! [`TransactionDb::append_rows`]: rulebases_dataset::TransactionDb::append_rows
//! [`MiningContext::apply_delta`]: rulebases_dataset::MiningContext::apply_delta
//! [`IncrementalLattice::insert_object_delta`]: rulebases_lattice::IncrementalLattice::insert_object_delta
//! [`LatticeDelta`]: rulebases_lattice::LatticeDelta

use crate::approx::LuxenburgerBasis;
use crate::exact::DuquenneGuiguesBasis;
use crate::fused::{derive_frequent, min_count_for, PipelineKind};
use crate::miner::{MinedBases, RuleMiner};
use crate::rule::Rule;
use rulebases_dataset::{
    DatasetError, DeltaError, EngineKind, Itemset, MiningContext, Support, TransactionDb, TxDelta,
};
use rulebases_lattice::{
    pseudo_closed_of_family, GenStats, IncrementalLattice, LatticeDelta, PseudoClosed,
};
use rulebases_mining::{ClosedAlgorithm, ClosedItemsets};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// The retention policy of a streaming session: which suffix of the
/// pushed rows the maintained context keeps. Configured with
/// [`StreamingMiner::window`]; enforced at the end of every
/// [`StreamingMiner::push_batch`], where the out-of-window prefix
/// expires through the engine/lattice delta machinery (see the
/// [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Window {
    /// Keep every row ever pushed (the default).
    #[default]
    Unbounded,
    /// Keep the newest `n` rows: after each push, anything older than
    /// the `n` most recent rows expires. A batch larger than the window
    /// still inserts every row before the prefix expires, so the
    /// surviving state is exactly the batch's own tail.
    Sliding(usize),
    /// Keep the rows of the newest `n` batches: a batch's rows expire
    /// wholesale once `n` newer non-empty batches have been pushed.
    /// The seed database counts as one batch; empty pushes do not age
    /// the window.
    Ttl(usize),
}

/// Why a [`StreamingMiner::push_batch`] failed. The miner is unchanged on
/// error.
#[derive(Debug)]
pub enum StreamError {
    /// The append itself was rejected (e.g. an item id outside a
    /// dictionary-pinned universe).
    Dataset(DatasetError),
    /// The engine could not absorb the delta (e.g. the context has live
    /// clones sharing the engine).
    Delta(DeltaError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Dataset(e) => write!(f, "append rejected: {e}"),
            StreamError::Delta(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Dataset(e) => Some(e),
            StreamError::Delta(e) => Some(e),
        }
    }
}

impl From<DatasetError> for StreamError {
    fn from(e: DatasetError) -> Self {
        StreamError::Dataset(e)
    }
}

impl From<DeltaError> for StreamError {
    fn from(e: DeltaError) -> Self {
        StreamError::Delta(e)
    }
}

/// How one rule family moved across a batch. Rules are identified by
/// their `antecedent → consequent` pair; a rule present before and after
/// with different counts (supports always grow with the context) is
/// *restated*, not added + removed.
#[derive(Clone, Debug, Default)]
pub struct RuleSetDelta {
    /// Rules the batch introduced (with their new-context counts).
    pub added: Vec<Rule>,
    /// Rules the batch retired (with their old-context counts).
    pub removed: Vec<Rule>,
    /// Rules present on both sides whose support or confidence moved.
    pub restated: usize,
}

impl RuleSetDelta {
    /// Snapshot-diff of two full rule lists — the **test oracle** for the
    /// lattice-level patching [`StreamingMiner::push_batch`] performs
    /// (the production path never materializes two full rule sets).
    pub fn between(old: &[Rule], new: &[Rule]) -> Self {
        let key = |r: &Rule| (r.antecedent.clone(), r.consequent.clone());
        let old_by_key: HashMap<_, &Rule> = old.iter().map(|r| (key(r), r)).collect();
        let mut delta = RuleSetDelta::default();
        let mut kept: HashSet<(Itemset, Itemset)> = HashSet::new();
        for rule in new {
            match old_by_key.get(&key(rule)) {
                None => delta.added.push(rule.clone()),
                Some(before) => {
                    kept.insert(key(rule));
                    if *before != rule {
                        delta.restated += 1;
                    }
                }
            }
        }
        delta.removed = old
            .iter()
            .filter(|r| !kept.contains(&key(r)))
            .cloned()
            .collect();
        delta
    }

    /// Whether the batch left this family untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.restated == 0
    }
}

/// What one [`StreamingMiner::push_batch`] changed, against the
/// support/confidence thresholds rescaled to the grown context.
#[derive(Clone, Debug)]
pub struct BasesDelta {
    /// Epoch after the batch (the expiry's epoch when the window
    /// trimmed the prefix, else the append's).
    pub epoch: u64,
    /// Number of rows the batch appended.
    pub appended: usize,
    /// Number of prefix rows the session's [`Window`] expired along
    /// with the batch (0 for an unbounded session).
    pub expired: usize,
    /// Context size after the batch.
    pub n_objects: usize,
    /// Absolute support threshold after rescaling to `n_objects`.
    pub min_count: Support,
    /// Closed sets that entered the iceberg view.
    pub closed_added: Vec<Itemset>,
    /// Closed sets that left the iceberg view (a fractional threshold
    /// rises with the row count).
    pub closed_removed: Vec<Itemset>,
    /// Movement of the Duquenne-Guigues basis.
    pub dg: RuleSetDelta,
    /// Movement of the full Luxenburger basis.
    pub lux_full: RuleSetDelta,
    /// Movement of the reduced Luxenburger basis.
    pub lux_reduced: RuleSetDelta,
    /// Generator-maintenance work the batch's lattice steps spent
    /// (extension candidates, subsumption checks, oracle fallbacks —
    /// the last identically zero on this path, the invariant the bench
    /// gate pins).
    pub gen: GenStats,
}

impl BasesDelta {
    /// A delta that reports no movement — what an empty batch returns.
    pub fn empty(epoch: u64, n_objects: usize, min_count: Support) -> Self {
        BasesDelta {
            epoch,
            appended: 0,
            expired: 0,
            n_objects,
            min_count,
            closed_added: Vec::new(),
            closed_removed: Vec::new(),
            dg: RuleSetDelta::default(),
            lux_full: RuleSetDelta::default(),
            lux_reduced: RuleSetDelta::default(),
            gen: GenStats::default(),
        }
    }

    /// Snapshot-diff of two fully materialized base bundles — the **test
    /// oracle** the per-batch lattice-level patching is property-tested
    /// against. The production [`StreamingMiner::push_batch`] computes
    /// its delta directly from the touched-class set instead of calling
    /// this.
    pub fn between(
        old: &MinedBases,
        new: &MinedBases,
        epoch: u64,
        appended: usize,
        expired: usize,
    ) -> Self {
        let old_sets: HashSet<&Itemset> = old.closed.iter().map(|(s, _)| s).collect();
        let new_sets: HashSet<&Itemset> = new.closed.iter().map(|(s, _)| s).collect();
        BasesDelta {
            epoch,
            appended,
            expired,
            n_objects: new.n_objects,
            min_count: new.min_count,
            closed_added: new
                .closed
                .iter()
                .filter(|(s, _)| !old_sets.contains(s))
                .map(|(s, _)| s.clone())
                .collect(),
            closed_removed: old
                .closed
                .iter()
                .filter(|(s, _)| !new_sets.contains(s))
                .map(|(s, _)| s.clone())
                .collect(),
            dg: RuleSetDelta::between(old.dg.rules(), new.dg.rules()),
            lux_full: RuleSetDelta::between(old.lux_full.rules(), new.lux_full.rules()),
            lux_reduced: RuleSetDelta::between(old.lux_reduced.rules(), new.lux_reduced.rules()),
            // A snapshot diff spends no maintenance work; the oracle
            // compares rule movement, not counters.
            gen: GenStats::default(),
        }
    }

    /// Whether the batch changed nothing visible: no closed-set movement
    /// and no rule movement in any basis (supports of untouched classes
    /// may still have grown).
    pub fn is_empty(&self) -> bool {
        self.closed_added.is_empty()
            && self.closed_removed.is_empty()
            && self.dg.is_empty()
            && self.lux_full.is_empty()
            && self.lux_reduced.is_empty()
    }
}

/// A rule's identity in the maintained maps: `(X ∪ Z, X)` — exactly
/// [`Rule::sort_key`], so iterating a map in key order yields the
/// canonical sorted rule list.
type RuleKey = (Itemset, Itemset);

/// The incrementally maintained products of a streaming session: iceberg
/// membership per lattice node, the two Luxenburger rule maps, and the
/// Duquenne-Guigues premises. [`StreamingMiner::push_batch`] patches this
/// in place from each batch's [`LatticeDelta`]; materializing a
/// [`MinedBases`] bundle just reads it out.
#[derive(Debug, Default)]
struct MaintainedBases {
    /// Absolute support threshold at the current row count.
    min_count: Support,
    /// `in_iceberg[id]` ⇔ lattice node `id` has `support ≥ min_count`.
    in_iceberg: Vec<bool>,
    /// The reduced Luxenburger basis (iceberg Hasse edges, bottom edges
    /// kept — reporting filters them), keyed canonically.
    lux_reduced: BTreeMap<RuleKey, Rule>,
    /// The full Luxenburger basis (comparable iceberg pairs), keyed
    /// canonically.
    lux_full: BTreeMap<RuleKey, Rule>,
    /// The frequent pseudo-closed sets (canonical order) and, aligned,
    /// the lattice node id of each closure (for O(1) support refresh).
    dg: Vec<PseudoClosed>,
    dg_nodes: Vec<usize>,
}

/// The reduced-basis rule of lattice edge `i → j`, if it qualifies: both
/// endpoints frequent, the edge present in the maintained diagram, and
/// the edge confidence at threshold. (Bottom edges are kept — the
/// derivation engines need them; reporting filters.)
fn reduced_rule(
    lattice: &IncrementalLattice,
    in_iceberg: &[bool],
    minconf: f64,
    i: usize,
    j: usize,
) -> Option<Rule> {
    if !in_iceberg[i] || !in_iceberg[j] || !lattice.upper_covers(i).contains(&j) {
        return None;
    }
    let (c1, s1) = lattice.node(i);
    let (c2, s2) = lattice.node(j);
    if (s2 as f64) < minconf * s1 as f64 {
        return None;
    }
    Some(Rule::new(c1.clone(), c2.difference(c1), s2, s1))
}

/// The full-basis rule of the comparable pair `(i, j)` (`c_i ⊂ c_j`), if
/// it qualifies: both endpoints frequent, confidence at threshold, and
/// the antecedent non-empty unless configured otherwise.
fn full_rule(
    lattice: &IncrementalLattice,
    in_iceberg: &[bool],
    minconf: f64,
    include_empty_antecedent: bool,
    i: usize,
    j: usize,
) -> Option<Rule> {
    if !in_iceberg[i] || !in_iceberg[j] {
        return None;
    }
    let (c1, s1) = lattice.node(i);
    let (c2, s2) = lattice.node(j);
    if c1.is_empty() && !include_empty_antecedent {
        return None;
    }
    if !c1.is_proper_subset_of(c2) || (s2 as f64) < minconf * s1 as f64 {
        return None;
    }
    Some(Rule::new(c1.clone(), c2.difference(c1), s2, s1))
}

/// The map key of the rule between nodes `i ⊂ j` — derivable without
/// building the rule, so disqualified candidates can still look up (and
/// retire) their old entry.
fn pair_key(lattice: &IncrementalLattice, i: usize, j: usize) -> RuleKey {
    let (c1, _) = lattice.node(i);
    let (c2, _) = lattice.node(j);
    (c2.clone(), c1.clone())
}

/// Reconciles one candidate rule slot against the maintained map,
/// recording the movement: absent→present is an addition, present→absent
/// a removal, a changed value a restatement.
fn reconcile(
    map: &mut BTreeMap<RuleKey, Rule>,
    key: RuleKey,
    new: Option<Rule>,
    delta: &mut RuleSetDelta,
) {
    match (map.get(&key), new) {
        (None, Some(rule)) => {
            delta.added.push(rule.clone());
            map.insert(key, rule);
        }
        (Some(old), None) => {
            delta.removed.push(old.clone());
            map.remove(&key);
        }
        (Some(old), Some(rule)) => {
            if *old != rule {
                delta.restated += 1;
                map.insert(key, rule);
            }
        }
        (None, None) => {}
    }
}

/// The DG rule of one pseudo-closed entry.
fn dg_rule(p: &PseudoClosed) -> Rule {
    Rule::new(
        p.set.clone(),
        p.closure.difference(&p.set),
        p.support,
        p.support,
    )
}

impl MaintainedBases {
    /// Rebuilds the whole maintained state from scratch against the
    /// current lattice — the seed-time construction (per-batch updates
    /// go through [`StreamingMiner::patch_bases`] instead).
    fn rebuild(config: &RuleMiner, ctx: &MiningContext, lattice: &IncrementalLattice) -> Self {
        let minconf = config.min_confidence_config();
        let include_empty = config.include_empty_antecedent_config();
        let min_count = min_count_for(config.min_support_config(), ctx.n_objects());
        let n = lattice.n_nodes();
        let in_iceberg: Vec<bool> = (0..n)
            .map(|i| lattice.is_live(i) && lattice.node(i).1 >= min_count)
            .collect();
        let mut state = MaintainedBases {
            min_count,
            in_iceberg,
            ..MaintainedBases::default()
        };
        for i in 0..n {
            for &j in lattice.upper_covers(i) {
                if let Some(rule) = reduced_rule(lattice, &state.in_iceberg, minconf, i, j) {
                    state.lux_reduced.insert(pair_key(lattice, i, j), rule);
                }
            }
            for j in 0..n {
                if let Some(rule) =
                    full_rule(lattice, &state.in_iceberg, minconf, include_empty, i, j)
                {
                    state.lux_full.insert(pair_key(lattice, i, j), rule);
                }
            }
        }
        state.rebuild_dg(ctx.n_items(), lattice);
        state
    }

    /// Recomputes the frequent pseudo-closed sets from the maintained
    /// iceberg family (no frequent-itemset walk — see
    /// [`pseudo_closed_of_family`]).
    fn rebuild_dg(&mut self, n_items: usize, lattice: &IncrementalLattice) {
        let family: Vec<(Itemset, Support)> = (0..lattice.n_nodes())
            .filter(|&i| self.in_iceberg[i])
            .map(|i| {
                let (set, support) = lattice.node(i);
                (set.clone(), support)
            })
            .collect();
        self.dg = pseudo_closed_of_family(&family, n_items);
        self.dg_nodes = self
            .dg
            .iter()
            .map(|p| {
                lattice
                    .position(&p.closure)
                    .expect("pseudo-closure is a lattice node")
            })
            .collect();
    }
}

/// A live bases-mining session over a growing database — built with
/// [`RuleMiner::streaming`], driven with [`StreamingMiner::push_batch`],
/// read with [`StreamingMiner::bases`] (see the [module docs](self) for
/// the maintenance story and a worked example).
#[derive(Debug)]
pub struct StreamingMiner {
    config: RuleMiner,
    db: Arc<TransactionDb>,
    ctx: MiningContext,
    lattice: IncrementalLattice,
    state: MaintainedBases,
    /// The retention policy — [`Window::Unbounded`] unless configured
    /// with [`StreamingMiner::window`].
    window: Window,
    /// Row counts of the batches still in the window, oldest first —
    /// the aging ledger a [`Window::Ttl`] policy expires from (unused
    /// by the other policies).
    batch_sizes: VecDeque<usize>,
    /// The last materialized bundle; invalidated by every push and
    /// rebuilt on demand by [`StreamingMiner::bases`].
    cached: Option<MinedBases>,
}

impl StreamingMiner {
    pub(crate) fn new(config: RuleMiner, db: TransactionDb) -> Self {
        let db = Arc::new(db);
        let ctx = MiningContext::with_engine_arc_par(
            Arc::clone(&db),
            config.engine_config(),
            config.parallelism_config(),
        );
        let mut lattice = IncrementalLattice::new();
        for t in 0..db.n_transactions() {
            lattice.insert_object(&Itemset::from_sorted(db.transaction(t).to_vec()));
        }
        let state = MaintainedBases::rebuild(&config, &ctx, &lattice);
        let mut batch_sizes = VecDeque::new();
        if db.n_transactions() > 0 {
            // The seed ages like one batch under a Ttl policy.
            batch_sizes.push_back(db.n_transactions());
        }
        StreamingMiner {
            config,
            db,
            ctx,
            lattice,
            state,
            window: Window::Unbounded,
            batch_sizes,
            cached: None,
        }
    }

    /// Sets the session's retention policy. Builder-style: configure
    /// right after [`RuleMiner::streaming`]. The policy is enforced at
    /// the end of every subsequent push — a seed wider than a
    /// [`Window::Sliding`] bound is trimmed by the first non-empty
    /// batch, not here.
    pub fn window(mut self, window: Window) -> Self {
        self.set_window(window);
        self
    }

    /// In-place form of [`StreamingMiner::window`] — for sessions
    /// already embedded somewhere (e.g. a server).
    pub fn set_window(&mut self, window: Window) {
        self.window = window;
    }

    /// The session's retention policy.
    pub fn window_config(&self) -> Window {
        self.window
    }

    /// Cumulative generator-maintenance work over the session's
    /// lifetime (seed replay included): extension candidates examined,
    /// subsumption checks spent, and transversal fallbacks — the last
    /// identically zero, since every streaming path maintains tags by
    /// the local rules (the invariant the gen-maintenance bench gate
    /// pins). Per-batch work rides on [`BasesDelta::gen`].
    pub fn gen_stats(&self) -> GenStats {
        self.lattice.gen_stats()
    }

    /// Appends one batch of transactions, expires whatever the
    /// session's [`Window`] no longer retains, and patches everything
    /// the session maintains — engine, lattice, and all three bases —
    /// without re-mining and at delta cost: the append allocates one
    /// storage segment, the engines absorb the append and the expiry in
    /// place, and the bases are patched from the lattice's accumulated
    /// touched-class report (only rules whose antecedent/consequent
    /// closure class was touched, or whose class crossed the rescaled
    /// threshold, are reconsidered). Thresholds rescale to the new row
    /// count — under a window that count can shrink, so a fractional
    /// minimum support falls in absolute terms too. Returns one
    /// [`BasesDelta`] covering both the appends and the expiries; on
    /// error nothing changed.
    ///
    /// An empty batch is a no-op: it returns an empty delta without
    /// advancing the epoch, aging the window, or touching any layer.
    pub fn push_batch(&mut self, rows: Vec<Vec<u32>>) -> Result<BasesDelta, StreamError> {
        if rows.is_empty() {
            return Ok(BasesDelta::empty(
                self.db.epoch(),
                self.n_objects(),
                self.state.min_count,
            ));
        }
        // Cloning the view is O(#segments): the segments themselves are
        // Arc-shared with the engines' pinned snapshot, and append_rows
        // only allocates the batch's own segment.
        let mut grown = TransactionDb::clone(&self.db);
        let info = grown.append_rows(rows)?;
        let grown = Arc::new(grown);
        let appended = grown.n_transactions() - info.start;
        let delta = TxDelta::new(Arc::clone(&grown), info);
        self.ctx.apply_delta(&delta)?;
        let mut touched = LatticeDelta::default();
        for t in info.start..grown.n_transactions() {
            touched.absorb(
                self.lattice
                    .insert_object_delta(&Itemset::from_sorted(grown.transaction(t).to_vec())),
            );
        }
        self.db = grown;
        let expired = self.window_overflow(appended);
        if expired > 0 {
            // Capture the expiring rows before the view shrinks — the
            // lattice removals need the original itemsets.
            let expiring: Vec<Itemset> = (0..expired)
                .map(|t| Itemset::from_sorted(self.db.transaction(t).to_vec()))
                .collect();
            let prior = Arc::clone(&self.db);
            let mut shrunk = TransactionDb::clone(&self.db);
            let einfo = shrunk.expire_rows(expired);
            let shrunk = Arc::new(shrunk);
            self.ctx
                .apply_delta(&TxDelta::expire(prior, Arc::clone(&shrunk), einfo))?;
            for row in &expiring {
                touched.absorb(self.lattice.remove_object_delta(row));
            }
            self.db = shrunk;
        }
        self.maybe_compact();
        let report = self.patch_bases(&touched, self.db.epoch(), appended, expired);
        self.cached = None;
        Ok(report)
    }

    /// How many prefix rows fall out of the window once a push has
    /// appended `appended` rows. [`Window::Ttl`] ages whole batches
    /// through the [`Self::batch_sizes`] ledger; [`Window::Sliding`]
    /// counts rows directly.
    fn window_overflow(&mut self, appended: usize) -> usize {
        match self.window {
            Window::Unbounded => 0,
            Window::Sliding(n) => self.db.n_transactions().saturating_sub(n),
            Window::Ttl(batches) => {
                self.batch_sizes.push_back(appended);
                let mut expired = 0;
                while self.batch_sizes.len() > batches {
                    expired += self.batch_sizes.pop_front().expect("len checked");
                }
                expired
            }
        }
    }

    /// Segment hygiene under a doubling policy: a long stream of small
    /// batches accumulates one storage segment per push, degrading the
    /// per-transaction address arithmetic; folding on every push would
    /// instead copy the whole prefix repeatedly. Compacting only when
    /// the segment count reaches `2·⌈log₂ rows⌉` keeps the segment
    /// count logarithmic in the row count while the total bytes copied
    /// across a stream's lifetime stay `O(rows · log rows)`.
    ///
    /// [`TransactionDb::compact`] preserves contents, dictionary, *and
    /// epoch*, so the swap is invisible to the delta-maintained engine:
    /// the next [`TxDelta`] is still epoch-consecutive, and the engine's
    /// own pinned snapshot keeps the old segments alive until it next
    /// absorbs a delta (transiently doubling resident bytes — the price
    /// of never blocking on readers).
    fn maybe_compact(&mut self) {
        let rows = self.db.n_transactions();
        if rows < 2 || self.db.n_segments() < Self::segment_budget(rows) {
            return;
        }
        let mut flat = TransactionDb::clone(&self.db);
        flat.compact();
        debug_assert_eq!(flat.epoch(), self.db.epoch());
        self.db = Arc::new(flat);
    }

    /// The doubling-policy ceiling: `2·⌈log₂ rows⌉` segments (rows ≥ 2).
    fn segment_budget(rows: usize) -> usize {
        2 * (usize::BITS - (rows - 1).leading_zeros()).max(1) as usize
    }

    /// Patches the maintained bases from one batch's accumulated
    /// [`LatticeDelta`] (appends and window expiries alike), computing
    /// the [`BasesDelta`] directly: the only rule slots reconsidered
    /// are those incident to a touched class, to a class whose iceberg
    /// membership flipped under the rescaled threshold, or to a
    /// covering edge the batch removed (by interposition or by a class
    /// dying). Classes the batch killed are forced out of the iceberg;
    /// their tombstoned slots are excluded from candidate enumeration
    /// in every *later* batch (a dead slot's intent may be recreated by
    /// a live class, and the shared rule key must then belong to the
    /// live one alone).
    fn patch_bases(
        &mut self,
        touched: &LatticeDelta,
        epoch: u64,
        appended: usize,
        expired: usize,
    ) -> BasesDelta {
        let lattice = &self.lattice;
        let state = &mut self.state;
        let minconf = self.config.min_confidence_config();
        let include_empty = self.config.include_empty_antecedent_config();
        let n_nodes = lattice.n_nodes();
        let old_min = state.min_count;
        let new_min = min_count_for(self.config.min_support_config(), self.ctx.n_objects());
        state.in_iceberg.resize(n_nodes, false);

        // Net per-node support movement — +1 per bump, −1 per drop; a
        // mixed batch can cancel to zero.
        let mut bumps: HashMap<usize, i64> = HashMap::new();
        for &id in &touched.bumped {
            *bumps.entry(id).or_insert(0) += 1;
        }
        for &id in &touched.dropped {
            *bumps.entry(id).or_insert(0) -= 1;
        }

        // Classes this batch killed: still legitimate rule-slot
        // endpoints (their old entries must be retired), unlike slots
        // dead since an earlier batch.
        let died_now: HashSet<usize> = touched.removed.iter().copied().collect();

        // Membership flips: only touched nodes can flip while the
        // threshold stands still; when it moves, every node is a
        // candidate (an O(classes) flag scan, independent of row count).
        let mut affected: BTreeSet<usize> = touched.touched().into_iter().collect();
        let flip_candidates: Vec<usize> = if new_min != old_min {
            (0..n_nodes).collect()
        } else {
            affected.iter().copied().collect()
        };
        let mut entered: Vec<usize> = Vec::new();
        let mut left: Vec<usize> = Vec::new();
        for id in flip_candidates {
            let now_in = lattice.is_live(id) && lattice.node(id).1 >= new_min;
            if now_in != state.in_iceberg[id] {
                if now_in {
                    entered.push(id);
                } else {
                    left.push(id);
                }
                state.in_iceberg[id] = now_in;
                affected.insert(id);
            }
        }
        state.min_count = new_min;

        // Reduced basis: reconsider every edge incident to an affected
        // node, plus the edges interposition removed.
        let mut candidate_edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &a in &affected {
            for &u in lattice.upper_covers(a) {
                candidate_edges.insert((a, u));
            }
            for &l in lattice.lower_covers(a) {
                candidate_edges.insert((l, a));
            }
        }
        candidate_edges.extend(touched.removed_edges.iter().copied());
        let mut lux_reduced = RuleSetDelta::default();
        for (i, j) in candidate_edges {
            let new = reduced_rule(lattice, &state.in_iceberg, minconf, i, j);
            reconcile(
                &mut state.lux_reduced,
                pair_key(lattice, i, j),
                new,
                &mut lux_reduced,
            );
        }

        // Full basis: reconsider every comparable pair with an affected
        // endpoint. Slots dead since an earlier batch are skipped: their
        // rules were retired the batch they died, and their intent may
        // since have been recreated by a live class whose rule key they
        // would collide with.
        let mut candidate_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &a in &affected {
            if !lattice.is_live(a) && !died_now.contains(&a) {
                continue;
            }
            let (ca, _) = lattice.node(a);
            for b in 0..n_nodes {
                if b == a || (!lattice.is_live(b) && !died_now.contains(&b)) {
                    continue;
                }
                let (cb, _) = lattice.node(b);
                if ca.is_proper_subset_of(cb) {
                    candidate_pairs.insert((a, b));
                } else if cb.is_proper_subset_of(ca) {
                    candidate_pairs.insert((b, a));
                }
            }
        }
        let mut lux_full = RuleSetDelta::default();
        for (i, j) in candidate_pairs {
            let new = full_rule(lattice, &state.in_iceberg, minconf, include_empty, i, j);
            reconcile(
                &mut state.lux_full,
                pair_key(lattice, i, j),
                new,
                &mut lux_full,
            );
        }
        lux_reduced.added.sort();
        lux_reduced.removed.sort();
        lux_full.added.sort();
        lux_full.removed.sort();

        // DG basis. The premises depend only on the iceberg *family* of
        // intents: while no class entered or left, the batch can only
        // restate supports (a pseudo-closed set's support is its closure
        // class's). When the family moved, recompute the premises from
        // the maintained family and diff the two DG-sized lists.
        let dg = if entered.is_empty() && left.is_empty() {
            let mut restated = 0;
            for (p, node) in state.dg.iter_mut().zip(&state.dg_nodes) {
                if let Some(&b) = bumps.get(node) {
                    if b != 0 {
                        p.support = (p.support as i64 + b) as Support;
                        restated += 1;
                    }
                }
            }
            RuleSetDelta {
                restated,
                ..RuleSetDelta::default()
            }
        } else {
            let old_rules: Vec<Rule> = state.dg.iter().map(dg_rule).collect();
            state.rebuild_dg(self.ctx.n_items(), lattice);
            let new_rules: Vec<Rule> = state.dg.iter().map(dg_rule).collect();
            // Both lists are DG-sized (the smallest basis), canonically
            // ordered by premise: diffing them IS the delta-sized
            // computation here, so the oracle formulation serves as is.
            RuleSetDelta::between(&old_rules, &new_rules)
        };

        let mut closed_added: Vec<Itemset> = entered
            .iter()
            .map(|&id| lattice.node(id).0.clone())
            .collect();
        let mut closed_removed: Vec<Itemset> =
            left.iter().map(|&id| lattice.node(id).0.clone()).collect();
        closed_added.sort();
        closed_removed.sort();

        BasesDelta {
            epoch,
            appended,
            expired,
            n_objects: self.ctx.n_objects(),
            min_count: new_min,
            closed_added,
            closed_removed,
            dg,
            lux_full,
            lux_reduced,
            gen: touched.gen,
        }
    }

    /// Materializes the maintained state as a [`MinedBases`] bundle.
    fn materialize(&self) -> MinedBases {
        let min_count = self.state.min_count;
        let (lattice, minimal_generators) = self.lattice.snapshot(min_count);
        let n = self.ctx.n_objects();
        let closed = ClosedItemsets::from_pairs(
            (0..lattice.n_nodes())
                .map(|i| {
                    let (s, sup) = lattice.node(i);
                    (s.clone(), sup)
                })
                .collect(),
            min_count,
            n,
        );
        let frequent = derive_frequent(&closed, &self.config, &self.ctx);
        let dg =
            DuquenneGuiguesBasis::from_pseudo_closed(self.state.dg.clone(), self.ctx.n_items());
        let lux_full = LuxenburgerBasis::from_sorted_rules(
            self.state.lux_full.values().cloned().collect(),
            self.config.min_confidence_config(),
            false,
        );
        let lux_reduced = LuxenburgerBasis::from_sorted_rules(
            self.state.lux_reduced.values().cloned().collect(),
            self.config.min_confidence_config(),
            true,
        );
        MinedBases {
            min_count,
            n_objects: n,
            min_support: self.config.min_support_config(),
            min_confidence: self.config.min_confidence_config(),
            include_empty_antecedent: self.config.include_empty_antecedent_config(),
            pipeline: PipelineKind::Fused,
            frequent,
            closed,
            lattice,
            minimal_generators: Some(minimal_generators),
            dg,
            lux_full,
            lux_reduced,
        }
    }

    /// The current bases — the same bundle a one-shot
    /// [`PipelineKind::Fused`] run over the
    /// grown database would produce. Materialized from the maintained
    /// state on first call after a batch, then cached (which is why this
    /// takes `&mut self`); [`StreamingMiner::push_batch`] itself never
    /// pays for materialization.
    pub fn bases(&mut self) -> &MinedBases {
        if self.cached.is_none() {
            self.cached = Some(self.materialize());
        }
        self.cached.as_ref().expect("just materialized")
    }

    /// The live mining context (delta-maintained engine included).
    ///
    /// Cloning the returned context shares its engine; a clone held
    /// across the next [`StreamingMiner::push_batch`] makes that push
    /// fail with [`DeltaError::SharedEngine`] — query and drop.
    pub fn context(&self) -> &MiningContext {
        &self.ctx
    }

    /// The grown database (a cheap view over the session's shared
    /// storage segments).
    pub fn db(&self) -> &TransactionDb {
        &self.db
    }

    /// Number of objects seen so far.
    pub fn n_objects(&self) -> usize {
        self.db.n_transactions()
    }

    /// The append epoch (0 before any batch).
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Number of storage segments behind the session's view — bounded
    /// by the doubling compaction policy at `2·⌈log₂ rows⌉`.
    pub fn n_segments(&self) -> usize {
        self.db.n_segments()
    }

    /// Number of closed sets the maintained (unthresholded) lattice
    /// holds — the memory the session pays to answer any future
    /// threshold.
    pub fn n_closure_classes(&self) -> usize {
        self.lattice.n_nodes()
    }

    /// Captures the whole session as its serializable wire form — the
    /// payload [`crate::checkpoint`] frames, checksums, and persists.
    /// The engine is recorded as the session's *resolved* backend, so a
    /// restore rebuilds the exact same engine even when the session was
    /// configured with [`rulebases_dataset::EngineKind::Auto`]. The
    /// materialization cache is transient and not captured.
    pub(crate) fn to_wire(&self) -> SessionWire {
        SessionWire {
            min_support: self.config.min_support_config(),
            min_confidence: self.config.min_confidence_config(),
            algorithm: self.config.algorithm_config(),
            include_empty_antecedent: self.config.include_empty_antecedent_config(),
            engine: self.ctx.resolved_kind().to_string(),
            parallelism: self.config.parallelism_config(),
            db: TransactionDb::clone(&self.db),
            lattice: self.lattice.clone(),
            window: self.window,
            batch_sizes: self.batch_sizes.iter().copied().collect(),
            min_count: self.state.min_count,
            in_iceberg: self.state.in_iceberg.clone(),
            lux_reduced: self.state.lux_reduced.values().cloned().collect(),
            lux_full: self.state.lux_full.values().cloned().collect(),
            dg: self.state.dg.clone(),
            dg_nodes: self.state.dg_nodes.clone(),
        }
    }

    /// Rebuilds a session from its wire form — the restore half of
    /// [`StreamingMiner::to_wire`]. Deliberately **not** the seed path
    /// of [`StreamingMiner::new`]: the lattice is installed as
    /// persisted (tombstones, generator tags, and slot ids intact — a
    /// seed replay would renumber the slots and recycle freed ids), the
    /// maintained maps are rekeyed from the persisted rules, and the
    /// support engine is *constructed* over the restored rows but never
    /// *queried* — the whole restore performs zero support-engine calls.
    ///
    /// Fails (never panics) on a wire that is internally inconsistent —
    /// the last line of defense behind the checkpoint frame's checksum.
    pub(crate) fn from_wire(wire: SessionWire) -> Result<StreamingMiner, String> {
        if !(0.0..=1.0).contains(&wire.min_confidence) {
            return Err(format!(
                "min_confidence {} outside [0, 1]",
                wire.min_confidence
            ));
        }
        let engine: EngineKind = wire
            .engine
            .parse()
            .map_err(|e| format!("engine {:?}: {e}", wire.engine))?;
        let n = wire.lattice.n_nodes();
        if wire.in_iceberg.len() != n {
            return Err(format!(
                "iceberg flags cover {} slots, lattice has {n}",
                wire.in_iceberg.len()
            ));
        }
        if wire.dg_nodes.len() != wire.dg.len() {
            return Err(format!(
                "{} pseudo-closed sets but {} closure node ids",
                wire.dg.len(),
                wire.dg_nodes.len()
            ));
        }
        if let Some(&bad) = wire
            .dg_nodes
            .iter()
            .find(|&&id| id >= n || !wire.lattice.is_live(id))
        {
            return Err(format!("pseudo-closure node {bad} is not a live class"));
        }
        let config = RuleMiner::new(wire.min_support)
            .min_confidence(wire.min_confidence)
            .algorithm(wire.algorithm)
            .include_empty_antecedent(wire.include_empty_antecedent)
            .engine(engine)
            .parallelism(wire.parallelism);
        let db = Arc::new(wire.db);
        let ctx = MiningContext::with_engine_arc_par(
            Arc::clone(&db),
            config.engine_config(),
            config.parallelism_config(),
        );
        let state = MaintainedBases {
            min_count: wire.min_count,
            in_iceberg: wire.in_iceberg,
            lux_reduced: wire
                .lux_reduced
                .into_iter()
                .map(|r| (r.sort_key(), r))
                .collect(),
            lux_full: wire
                .lux_full
                .into_iter()
                .map(|r| (r.sort_key(), r))
                .collect(),
            dg: wire.dg,
            dg_nodes: wire.dg_nodes,
        };
        Ok(StreamingMiner {
            config,
            db,
            ctx,
            lattice: wire.lattice,
            state,
            window: wire.window,
            batch_sizes: wire.batch_sizes.into(),
            cached: None,
        })
    }
}

/// The on-wire shape of a [`StreamingMiner`] session: configuration
/// (thresholds, resolved engine, thread policy), the grown database,
/// the incremental lattice with its tombstones and generator tags, the
/// maintained base maps (flattened to canonical rule lists — the map
/// keys are [`Rule::sort_key`] and are rebuilt on restore), and the
/// window policy with its TTL aging ledger. [`crate::checkpoint`] wraps
/// this in a versioned, checksummed frame; the shape itself is plain
/// serde so the lattice and dataset layers own their own encodings.
#[derive(Serialize, Deserialize)]
pub(crate) struct SessionWire {
    pub(crate) min_support: rulebases_dataset::MinSupport,
    pub(crate) min_confidence: f64,
    pub(crate) algorithm: ClosedAlgorithm,
    pub(crate) include_empty_antecedent: bool,
    /// The resolved [`EngineKind`], in its `Display`/`FromStr` form.
    pub(crate) engine: String,
    pub(crate) parallelism: rulebases_dataset::Parallelism,
    pub(crate) db: TransactionDb,
    pub(crate) lattice: IncrementalLattice,
    pub(crate) window: Window,
    pub(crate) batch_sizes: Vec<usize>,
    pub(crate) min_count: Support,
    pub(crate) in_iceberg: Vec<bool>,
    pub(crate) lux_reduced: Vec<Rule>,
    pub(crate) lux_full: Vec<Rule>,
    pub(crate) dg: Vec<PseudoClosed>,
    pub(crate) dg_nodes: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::PipelineKind;
    use rulebases_dataset::{paper_example, MinSupport};

    fn paper_rows() -> Vec<Vec<u32>> {
        vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
            vec![1, 2, 3, 5],
        ]
    }

    fn assert_same_bases(a: &MinedBases, b: &MinedBases, label: &str) {
        assert_eq!(
            a.closed.clone().into_sorted_vec(),
            b.closed.clone().into_sorted_vec(),
            "{label}: closed sets"
        );
        assert_eq!(
            a.lattice.edges().collect::<Vec<_>>(),
            b.lattice.edges().collect::<Vec<_>>(),
            "{label}: Hasse edges"
        );
        assert_eq!(a.dg.rules(), b.dg.rules(), "{label}: DG");
        assert_eq!(a.lux_full.rules(), b.lux_full.rules(), "{label}: Lux full");
        assert_eq!(
            a.lux_reduced.rules(),
            b.lux_reduced.rules(),
            "{label}: Lux reduced"
        );
        assert_eq!(a.min_count, b.min_count, "{label}: min_count");
    }

    #[test]
    fn segment_hygiene_follows_the_doubling_policy() {
        // A long stream of 1-row batches would otherwise accumulate one
        // segment per push; the doubling policy folds the view whenever
        // the count reaches 2·⌈log₂ rows⌉, so the bound holds at every
        // prefix and at least one compaction actually fires.
        let miner = RuleMiner::new(MinSupport::Fraction(0.3)).min_confidence(0.5);
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
        let mut compacted = false;
        let mut prev_segments = stream.n_segments();
        for t in 0..48u32 {
            stream
                .push_batch(vec![vec![t % 4, 4 + t % 3, 7 + t % 2]])
                .unwrap();
            let rows = stream.n_objects();
            let budget = StreamingMiner::segment_budget(rows.max(2));
            assert!(
                stream.n_segments() < budget.max(2),
                "after {rows} rows: {} segments breaches the 2·⌈log₂ rows⌉ = {budget} budget",
                stream.n_segments()
            );
            compacted |= stream.n_segments() <= prev_segments;
            prev_segments = stream.n_segments();
        }
        assert!(compacted, "48 one-row pushes must trigger a compaction");
        // Compaction is invisible to the maintained state: the bases
        // equal a from-scratch mine of the same rows.
        let oracle = miner.clone().mine(TransactionDb::clone(stream.db()));
        assert_same_bases(stream.bases(), &oracle, "post-compaction");
    }

    #[test]
    fn one_batch_is_the_fused_pipeline() {
        // The degenerate streaming run — everything in one batch from an
        // empty start — is the batch pipeline.
        let miner = RuleMiner::new(MinSupport::Fraction(0.4)).min_confidence(0.5);
        let fused = miner
            .clone()
            .pipeline(PipelineKind::Fused)
            .mine(paper_example());
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
        let delta = stream.push_batch(paper_rows()).unwrap();
        assert_eq!(delta.n_objects, 5);
        assert_eq!(delta.appended, 5);
        assert_same_bases(stream.bases(), &fused, "one batch");
        // And seeding the session with the full db gives the same state.
        let mut seeded = miner.streaming(paper_example());
        assert_same_bases(seeded.bases(), &fused, "seeded");
    }

    #[test]
    fn per_batch_states_match_fused_on_every_prefix() {
        let miner = RuleMiner::new(MinSupport::Fraction(0.4)).min_confidence(0.6);
        let rows = paper_rows();
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
        for end in 1..=rows.len() {
            stream.push_batch(vec![rows[end - 1].clone()]).unwrap();
            let oracle = miner
                .clone()
                .pipeline(PipelineKind::Fused)
                .mine(TransactionDb::from_rows(rows[..end].to_vec()));
            assert_same_bases(stream.bases(), &oracle, &format!("prefix {end}"));
            assert_eq!(stream.epoch(), end as u64);
        }
    }

    #[test]
    fn per_batch_deltas_match_the_snapshot_diff_oracle() {
        // The direct (lattice-level) BasesDelta equals the PR 4
        // formulation: diff the fully materialized before/after bundles.
        let miner = RuleMiner::new(MinSupport::Fraction(0.3)).min_confidence(0.5);
        let rows: Vec<Vec<u32>> = (0..30u32)
            .map(|t| vec![t % 4, 4 + t % 3, 7 + (t / 5) % 2])
            .collect();
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
        let mut seen = 0;
        for chunk in rows.chunks(3) {
            let before = miner
                .clone()
                .pipeline(PipelineKind::Fused)
                .mine(TransactionDb::from_rows(rows[..seen].to_vec()));
            seen += chunk.len();
            let after = miner
                .clone()
                .pipeline(PipelineKind::Fused)
                .mine(TransactionDb::from_rows(rows[..seen].to_vec()));
            let direct = stream.push_batch(chunk.to_vec()).unwrap();
            let oracle = BasesDelta::between(&before, &after, direct.epoch, chunk.len(), 0);
            assert_delta_eq(&direct, &oracle, &format!("prefix {seen}"));
        }
    }

    pub(crate) fn assert_delta_eq(direct: &BasesDelta, oracle: &BasesDelta, label: &str) {
        assert_eq!(direct.n_objects, oracle.n_objects, "{label}: n_objects");
        assert_eq!(direct.min_count, oracle.min_count, "{label}: min_count");
        assert_eq!(
            direct.closed_added, oracle.closed_added,
            "{label}: closed_added"
        );
        assert_eq!(
            direct.closed_removed, oracle.closed_removed,
            "{label}: closed_removed"
        );
        for (name, d, o) in [
            ("dg", &direct.dg, &oracle.dg),
            ("lux_full", &direct.lux_full, &oracle.lux_full),
            ("lux_reduced", &direct.lux_reduced, &oracle.lux_reduced),
        ] {
            let mut da = d.added.clone();
            let mut oa = o.added.clone();
            da.sort();
            oa.sort();
            assert_eq!(da, oa, "{label}: {name} added");
            let mut dr = d.removed.clone();
            let mut or = o.removed.clone();
            dr.sort();
            or.sort();
            assert_eq!(dr, or, "{label}: {name} removed");
            assert_eq!(d.restated, o.restated, "{label}: {name} restated");
        }
    }

    #[test]
    fn fractional_threshold_rescales_and_reports_removals() {
        // At minsup 0.4, BCE (supp 3 of 5) is frequent; flooding the
        // stream with unrelated rows raises the absolute threshold and
        // BCE must drop out of the iceberg view — reported as removed.
        let miner = RuleMiner::new(MinSupport::Fraction(0.4)).min_confidence(0.5);
        let mut stream = miner.streaming(paper_example());
        let bce = Itemset::from_ids([2, 3, 5]);
        assert!(stream.bases().closed.contains(&bce));
        let delta = stream
            .push_batch((0..5).map(|_| vec![1, 3]).collect())
            .unwrap();
        assert_eq!(delta.min_count, 4); // 0.4 × 10 rows
        assert!(delta.closed_removed.contains(&bce));
        assert!(!stream.bases().closed.contains(&bce));
        // The whole state still equals the one-shot oracle on the grown
        // context.
        let mut rows = paper_rows();
        rows.extend((0..5).map(|_| vec![1, 3]));
        let oracle = miner
            .pipeline(PipelineKind::Fused)
            .mine(TransactionDb::from_rows(rows));
        assert_same_bases(stream.bases(), &oracle, "after flood");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut stream = RuleMiner::new(MinSupport::Count(2)).streaming(paper_example());
        let delta = stream.push_batch(vec![]).unwrap();
        assert!(delta.is_empty());
        assert_eq!(delta.appended, 0);
        assert_eq!(delta.n_objects, 5);
        // No epoch burned, no layer touched.
        assert_eq!(stream.epoch(), 0);
        assert_eq!(stream.context().epoch(), 0);
        // A real batch still flows normally afterwards.
        stream.push_batch(vec![vec![1, 3]]).unwrap();
        assert_eq!(stream.epoch(), 1);
    }

    #[test]
    fn dictionary_pinned_universe_rejects_batch_atomically() {
        let mut stream = RuleMiner::new(MinSupport::Count(2)).streaming(paper_example());
        let before = stream.n_objects();
        let err = stream
            .push_batch(vec![vec![1], vec![99]])
            .expect_err("id 99 outside the 6-label dictionary");
        assert!(matches!(
            err,
            StreamError::Dataset(DatasetError::UniversePinned { item: 99, .. })
        ));
        // Nothing moved: rows, epoch, engine, bases.
        assert_eq!(stream.n_objects(), before);
        assert_eq!(stream.epoch(), 0);
        assert_eq!(stream.context().epoch(), 0);
        // The session still works afterwards.
        stream.push_batch(vec![vec![1, 3]]).unwrap();
        assert_eq!(stream.n_objects(), 6);
    }

    #[test]
    fn cloned_context_blocks_the_next_push() {
        let mut stream = RuleMiner::new(MinSupport::Count(2)).streaming(paper_example());
        let clone = stream.context().clone();
        let err = stream.push_batch(vec![vec![1]]).expect_err("engine shared");
        assert!(matches!(err, StreamError::Delta(DeltaError::SharedEngine)));
        drop(clone);
        stream.push_batch(vec![vec![1]]).unwrap();
        assert_eq!(stream.n_objects(), 6);
    }

    #[test]
    fn delta_reports_rule_movement() {
        // Start with rows where A→C is exact, then break the implication:
        // the DG basis must move and the delta must say so.
        let miner = RuleMiner::new(MinSupport::Count(1)).min_confidence(0.5);
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![
            vec![1, 3],
            vec![1, 3],
            vec![3],
            vec![2],
        ]));
        assert!(stream
            .bases()
            .dg
            .rules()
            .iter()
            .any(|r| r.antecedent == Itemset::from_ids([1])));
        let delta = stream.push_batch(vec![vec![1]]).unwrap();
        assert!(!delta.is_empty());
        // {1} is now closed: it entered the iceberg.
        assert!(delta.closed_added.contains(&Itemset::from_ids([1])));
        // The A→AC implication left the DG basis.
        assert!(delta
            .dg
            .removed
            .iter()
            .any(|r| r.antecedent == Itemset::from_ids([1])));
    }

    #[test]
    fn push_batch_shares_storage_with_the_engine_snapshot() {
        // The zero-copy invariant at the session level: a push allocates
        // one new segment, leaves every prefix segment shared, and the
        // engine copies O(batch) bytes.
        let mut stream = RuleMiner::new(MinSupport::Count(2)).streaming(paper_example());
        let before_addrs = stream.db().segment_addrs();
        let before_bytes = stream.context().closure_cache_stats().bytes_copied;
        stream.push_batch(vec![vec![1, 3]]).unwrap();
        let after_addrs = stream.db().segment_addrs();
        assert_eq!(after_addrs.len(), before_addrs.len() + 1);
        assert_eq!(&after_addrs[..before_addrs.len()], &before_addrs[..]);
        let copied = stream.context().closure_cache_stats().bytes_copied - before_bytes;
        assert!(copied > 0, "delta application reads the appended rows");
        assert!(
            copied < 128,
            "1-row append must copy O(row) bytes: {copied}"
        );
    }
}
