//! Association rules.
//!
//! An association rule `X → Z` (with `X ∩ Z = ∅`) holds in a context with
//! *support* `supp(X ∪ Z)` and *confidence* `supp(X ∪ Z) / supp(X)`.
//! Rules with confidence 1 are **exact** (implications); the rest are
//! **approximate**. Supports are stored as exact counts so equality and
//! ordering never suffer floating-point noise; confidence is derived.

use rulebases_dataset::{ItemDictionary, Itemset, Support};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An association rule `antecedent → consequent` with exact counts.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// The antecedent `X` (may be empty only for the `∅ → h(∅)` basis
    /// rule).
    pub antecedent: Itemset,
    /// The consequent `Z`, disjoint from the antecedent and non-empty.
    pub consequent: Itemset,
    /// `supp(X ∪ Z)` — the rule's support count.
    pub support: Support,
    /// `supp(X)` — the antecedent's support count.
    pub antecedent_support: Support,
}

impl Rule {
    /// Creates a rule, checking the structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the consequent is empty, overlaps the antecedent, or the
    /// supports are inconsistent (`support > antecedent_support`, or a
    /// supported rule with an unsupported antecedent).
    pub fn new(
        antecedent: Itemset,
        consequent: Itemset,
        support: Support,
        antecedent_support: Support,
    ) -> Self {
        assert!(!consequent.is_empty(), "rule with empty consequent");
        assert!(
            antecedent.is_disjoint_from(&consequent),
            "antecedent and consequent overlap"
        );
        assert!(
            support <= antecedent_support,
            "support {support} exceeds antecedent support {antecedent_support}"
        );
        assert!(antecedent_support > 0, "rule with unsupported antecedent");
        Rule {
            antecedent,
            consequent,
            support,
            antecedent_support,
        }
    }

    /// The rule's confidence in `(0, 1]`.
    #[inline]
    pub fn confidence(&self) -> f64 {
        self.support as f64 / self.antecedent_support as f64
    }

    /// Whether the rule is exact (confidence = 1, i.e. the supports are
    /// equal — no floating point involved).
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.support == self.antecedent_support
    }

    /// The full itemset `X ∪ Z` the rule spans.
    pub fn full_itemset(&self) -> Itemset {
        self.antecedent.union(&self.consequent)
    }

    /// Relative support given the context size.
    pub fn frequency(&self, n_objects: usize) -> f64 {
        self.support as f64 / n_objects.max(1) as f64
    }

    /// Renders the rule with labels from `dict`.
    pub fn display<'a>(&'a self, dict: &'a ItemDictionary) -> RuleDisplay<'a> {
        RuleDisplay { rule: self, dict }
    }

    /// Canonical ordering key: by spanned itemset, then antecedent — gives
    /// deterministic rule lists.
    pub fn sort_key(&self) -> (Itemset, Itemset) {
        (self.full_itemset(), self.antecedent.clone())
    }
}

impl PartialOrd for Rule {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rule {
    fn cmp(&self, other: &Self) -> Ordering {
        self.full_itemset()
            .cmp(&other.full_itemset())
            .then_with(|| self.antecedent.cmp(&other.antecedent))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} → {:?} (supp={}, conf={:.3})",
            self.antecedent,
            self.consequent,
            self.support,
            self.confidence()
        )
    }
}

/// Label-aware display adapter returned by [`Rule::display`].
pub struct RuleDisplay<'a> {
    rule: &'a Rule,
    dict: &'a ItemDictionary,
}

impl fmt::Display for RuleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {} (supp={}, conf={:.3})",
            self.rule.antecedent.display(self.dict),
            self.rule.consequent.display(self.dict),
            self.rule.support,
            self.rule.confidence()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn confidence_and_exactness() {
        let exact = Rule::new(set(&[2]), set(&[5]), 4, 4);
        assert!(exact.is_exact());
        assert_eq!(exact.confidence(), 1.0);

        let approx = Rule::new(set(&[3]), set(&[1]), 3, 4);
        assert!(!approx.is_exact());
        assert!((approx.confidence() - 0.75).abs() < 1e-12);
        assert!((approx.frequency(5) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn full_itemset_unions() {
        let r = Rule::new(set(&[1]), set(&[3, 5]), 2, 3);
        assert_eq!(r.full_itemset(), set(&[1, 3, 5]));
    }

    #[test]
    fn empty_antecedent_is_allowed() {
        // The DG basis rule ∅ → h(∅) needs it.
        let r = Rule::new(Itemset::empty(), set(&[7]), 5, 5);
        assert!(r.is_exact());
    }

    #[test]
    #[should_panic(expected = "empty consequent")]
    fn empty_consequent_rejected() {
        let _ = Rule::new(set(&[1]), Itemset::empty(), 1, 1);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_sides_rejected() {
        let _ = Rule::new(set(&[1, 2]), set(&[2, 3]), 1, 1);
    }

    #[test]
    #[should_panic(expected = "exceeds antecedent support")]
    fn inconsistent_supports_rejected() {
        let _ = Rule::new(set(&[1]), set(&[2]), 5, 3);
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut rules = [
            Rule::new(set(&[2]), set(&[5]), 4, 4),
            Rule::new(set(&[1]), set(&[3]), 3, 3),
            Rule::new(set(&[5]), set(&[2]), 4, 4),
        ];
        rules.sort();
        assert_eq!(rules[0].antecedent, set(&[1]));
        // Same spanned set {2,5}: antecedent {2} before {5}.
        assert_eq!(rules[1].antecedent, set(&[2]));
        assert_eq!(rules[2].antecedent, set(&[5]));
    }

    #[test]
    fn display_formats() {
        let r = Rule::new(set(&[2]), set(&[5]), 4, 4);
        assert_eq!(r.to_string(), "{2} → {5} (supp=4, conf=1.000)");
        let dict = ItemDictionary::from_labels(["∅", "A", "B", "C", "D", "E"]);
        assert_eq!(
            r.display(&dict).to_string(),
            "{B} → {E} (supp=4, conf=1.000)"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let r = Rule::new(set(&[1]), set(&[2]), 2, 3);
        let json = serde_json::to_string(&r).unwrap();
        let back: Rule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
