//! Summary counts for one mining run — the row format of every experiment
//! table.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The counts reported by the paper-family experiments for one
/// `(dataset, minsup, minconf)` cell.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BasisReport {
    /// Dataset label.
    pub dataset: String,
    /// Relative minimum support used.
    pub min_support: f64,
    /// Minimum confidence used (for the approximate-rule columns).
    pub min_confidence: f64,
    /// Number of frequent itemsets `|F|`.
    pub n_frequent: usize,
    /// Number of frequent closed itemsets `|FC|` (excluding the empty
    /// bottom when `h(∅) = ∅`).
    pub n_closed: usize,
    /// Number of frequent pseudo-closed itemsets `|FP|` = size of the
    /// Duquenne-Guigues basis.
    pub n_pseudo_closed: usize,
    /// Number of exact rules (all of them).
    pub n_exact_rules: u64,
    /// Size of the Duquenne-Guigues basis.
    pub dg_size: usize,
    /// Number of approximate rules at `min_confidence` (all of them).
    pub n_approx_rules: usize,
    /// Size of the full Luxenburger basis at `min_confidence`.
    pub lux_full_size: usize,
    /// Size of the reduced (Hasse-edge) Luxenburger basis.
    pub lux_reduced_size: usize,
}

impl BasisReport {
    /// Reduction factor for exact rules (`all / basis`), or `None` when
    /// there is nothing to reduce.
    pub fn exact_reduction(&self) -> Option<f64> {
        (self.dg_size > 0).then(|| self.n_exact_rules as f64 / self.dg_size as f64)
    }

    /// Reduction factor for approximate rules against the reduced basis.
    pub fn approx_reduction(&self) -> Option<f64> {
        (self.lux_reduced_size > 0)
            .then(|| self.n_approx_rules as f64 / self.lux_reduced_size as f64)
    }

    /// The header matching [`BasisReport`]'s `Display` row.
    pub fn header() -> String {
        format!(
            "{:<14} {:>7} {:>8} {:>9} {:>9} {:>6} {:>10} {:>6} {:>10} {:>8} {:>8}",
            "dataset",
            "minsup",
            "minconf",
            "|F|",
            "|FC|",
            "|FP|",
            "exact",
            "DG",
            "approx",
            "LuxFull",
            "LuxRed",
        )
    }
}

impl fmt::Display for BasisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>6.1}% {:>7.1}% {:>9} {:>9} {:>6} {:>10} {:>6} {:>10} {:>8} {:>8}",
            self.dataset,
            self.min_support * 100.0,
            self.min_confidence * 100.0,
            self.n_frequent,
            self.n_closed,
            self.n_pseudo_closed,
            self.n_exact_rules,
            self.dg_size,
            self.n_approx_rules,
            self.lux_full_size,
            self.lux_reduced_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BasisReport {
        BasisReport {
            dataset: "paper".into(),
            min_support: 0.4,
            min_confidence: 0.5,
            n_frequent: 15,
            n_closed: 5,
            n_pseudo_closed: 3,
            n_exact_rules: 16,
            dg_size: 3,
            n_approx_rules: 34,
            lux_full_size: 7,
            lux_reduced_size: 5,
        }
    }

    #[test]
    fn reductions() {
        let r = sample();
        assert!((r.exact_reduction().unwrap() - 16.0 / 3.0).abs() < 1e-12);
        assert!((r.approx_reduction().unwrap() - 34.0 / 5.0).abs() < 1e-12);
        let empty = BasisReport::default();
        assert_eq!(empty.exact_reduction(), None);
        assert_eq!(empty.approx_reduction(), None);
    }

    #[test]
    fn display_aligns_with_header() {
        let r = sample();
        let header = BasisReport::header();
        let row = r.to_string();
        assert!(header.contains("|FC|"));
        assert!(row.contains("paper"));
        assert!(row.contains("40.0%"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: BasisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
