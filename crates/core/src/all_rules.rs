//! The "all valid rules" baseline (Agrawal et al.'s rule generation).
//!
//! The classical algorithm emits, for every frequent itemset `Y` and every
//! non-empty proper subset `X ⊂ Y`, the rule `X → Y∖X` whenever its
//! confidence reaches `minconf`. This is the redundant rule set whose size
//! the paper's bases are measured against.

use crate::rule::Rule;
use rulebases_mining::FrequentItemsets;

/// Generates **all** valid association rules at `min_confidence` from the
/// frequent itemsets, in canonical order.
///
/// Exponential in the size of the largest frequent itemset (that is the
/// point — this is the baseline the bases shrink). Both exact and
/// approximate rules are included; filter with [`Rule::is_exact`] to
/// split them.
///
/// # Panics
///
/// Panics if `min_confidence` is outside `[0, 1]`.
pub fn all_rules(frequent: &FrequentItemsets, min_confidence: f64) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "min_confidence {min_confidence} outside [0, 1]"
    );
    let mut rules = Vec::new();
    for (itemset, support) in frequent.iter() {
        if itemset.len() < 2 {
            continue;
        }
        for antecedent in itemset.proper_subsets() {
            let antecedent_support = frequent
                .support(&antecedent)
                .expect("subset of a frequent itemset is frequent");
            // Exact integer comparison: conf >= minconf ⇔
            // support >= minconf · antecedent_support.
            if (support as f64) < min_confidence * antecedent_support as f64 {
                continue;
            }
            let consequent = itemset.difference(&antecedent);
            rules.push(Rule::new(
                antecedent,
                consequent,
                support,
                antecedent_support,
            ));
        }
    }
    rules.sort();
    rules
}

/// Counts the valid rules without materializing them (same enumeration as
/// [`all_rules`]).
pub fn count_all_rules(frequent: &FrequentItemsets, min_confidence: f64) -> usize {
    let mut count = 0;
    for (itemset, support) in frequent.iter() {
        if itemset.len() < 2 {
            continue;
        }
        for antecedent in itemset.proper_subsets() {
            let antecedent_support = frequent
                .support(&antecedent)
                .expect("subset of a frequent itemset is frequent");
            if (support as f64) >= min_confidence * antecedent_support as f64 {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::{paper_example, Itemset, MinSupport, MiningContext};
    use rulebases_mining::Apriori;

    fn frequent() -> FrequentItemsets {
        let ctx = MiningContext::new(paper_example());
        Apriori::new().mine(&ctx, MinSupport::Count(2))
    }

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn minconf_zero_emits_every_subset_split() {
        let f = frequent();
        let rules = all_rules(&f, 0.0);
        // Σ over the 11 frequent itemsets of size ≥ 2 of (2^|Y| − 2):
        // six pairs ×2 + four triples ×6 + one quadruple ×14 = 50.
        assert_eq!(rules.len(), 50);
        assert_eq!(count_all_rules(&f, 0.0), 50);
    }

    #[test]
    fn paper_example_at_half_confidence() {
        let f = frequent();
        let rules = all_rules(&f, 0.5);
        // Published number for this example (Bastide et al.): 50 valid
        // rules at minconf 1/2.
        assert_eq!(rules.len(), 50);
        // Spot checks.
        assert!(rules.contains(&Rule::new(set(&[2]), set(&[5]), 4, 4)));
        assert!(rules.contains(&Rule::new(set(&[3]), set(&[1]), 3, 4)));
    }

    #[test]
    fn high_confidence_keeps_only_strong_rules() {
        let f = frequent();
        let rules = all_rules(&f, 1.0);
        // Exactly the exact rules remain.
        assert!(!rules.is_empty());
        assert!(rules.iter().all(Rule::is_exact));
        // B → E is one of them.
        assert!(rules.contains(&Rule::new(set(&[2]), set(&[5]), 4, 4)));
        // C → A (conf 3/4) is not.
        assert!(!rules
            .iter()
            .any(|r| r.antecedent == set(&[3]) && r.consequent == set(&[1])));
    }

    #[test]
    fn rules_have_consistent_supports() {
        let f = frequent();
        let ctx = MiningContext::new(paper_example());
        for rule in all_rules(&f, 0.3) {
            assert_eq!(ctx.support(&rule.full_itemset()), rule.support);
            assert_eq!(ctx.support(&rule.antecedent), rule.antecedent_support);
        }
    }

    #[test]
    fn count_matches_enumeration_across_thresholds() {
        let f = frequent();
        for conf in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
            assert_eq!(
                count_all_rules(&f, conf),
                all_rules(&f, conf).len(),
                "minconf {conf}"
            );
        }
    }

    #[test]
    fn counts_decrease_with_confidence() {
        let f = frequent();
        let mut last = usize::MAX;
        for conf in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = count_all_rules(&f, conf);
            assert!(n <= last);
            last = n;
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_confidence_rejected() {
        let _ = all_rules(&frequent(), 1.5);
    }
}
