//! Concurrent rule serving: epoch-swapped snapshots over the maintained
//! bases, with an antecedent inverted index for sub-linear matching.
//!
//! Mining the Duquenne-Guigues and Luxenburger bases (the paper's
//! contribution) is only half the story — the bases exist to be
//! *queried*: "given this basket, which rules fire, and what should we
//! recommend next". This module adds that consumption layer on top of
//! the streaming miner:
//!
//! * [`RuleServer`] — the single **writer**. It owns a
//!   [`StreamingMiner`], ingests append batches, and after each batch
//!   publishes a fresh immutable [`ServingSnapshot`] by atomically
//!   swapping one pointer. Publication is wait-free for readers and the
//!   writer never waits for readers.
//! * [`RuleReader`] — a cheap cloneable **reader** handle, one per query
//!   thread. Reads are wait-free: a reader either re-uses its cached
//!   snapshot (one atomic epoch load) or acquires the current one (two
//!   atomic RMWs, no locks, no retries).
//! * [`ServingSnapshot`] — an immutable, score-ordered view of the
//!   served basis carrying an **antecedent inverted index**: for every
//!   item, the sorted list of rule ids whose antecedent contains it.
//!   [`ServingSnapshot::match_basket`] intersects the basket's postings
//!   lists by a multiplicity merge, so matching costs
//!   `O(|basket| · postings)` instead of `O(|basis|)`, and because rule
//!   ids are assigned in (confidence, support) order the merge yields
//!   firing rules best-first — top-k short-circuits.
//!
//! # Publication invariant
//!
//! Readers always observe a **coherent epoch**: every query runs against
//! exactly one published snapshot — epoch `N` or epoch `N+1`, never a
//! torn mix of the two. The snapshot is immutable after construction and
//! the swap is a single `SeqCst` pointer exchange, so coherence holds by
//! construction. Retired snapshots are reclaimed by the writer only once
//! no reader acquisition is in flight (a `SeqCst` in-flight counter), so
//! a reader holding an old epoch keeps it alive for as long as it needs.
//!
//! # Example
//!
//! ```
//! use rulebases::{MinSupport, RuleMiner};
//! use rulebases_dataset::paper_example;
//!
//! let mut server = RuleMiner::new(MinSupport::Fraction(0.4))
//!     .min_confidence(0.5)
//!     .serving(paper_example());
//!
//! // A reader handle per query thread; reads are wait-free.
//! let mut reader = server.reader();
//! let hits = reader.match_basket(&[0, 2]); // basket {A, C}
//! assert!(hits.iter().all(|r| r.confidence() >= 0.5));
//!
//! // The writer keeps ingesting; readers pick up the new epoch on
//! // their next query without ever blocking the append.
//! server.ingest(vec![vec![0, 1, 2]]).unwrap();
//! assert!(reader.match_basket(&[0, 2]).epoch() > hits.epoch());
//! ```

use crate::miner::{MinedBases, RuleMiner};
use crate::rule::Rule;
use crate::stream::{BasesDelta, StreamError, StreamingMiner, Window};
use rulebases_dataset::{kernels, Item, Support, TransactionDb};
use serde::Serialize;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering as MemOrd};
use std::sync::{Arc, Mutex};

/// Which mined basis a [`RuleServer`] publishes for matching.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServedBasis {
    /// Duquenne-Guigues exact rules plus the *reduced* Luxenburger basis
    /// (Hasse edges) — the paper's concise pair, and the default.
    #[default]
    Compact,
    /// Duquenne-Guigues plus the *full* Luxenburger basis: every
    /// comparable closed pair at the confidence threshold.
    Full,
    /// Duquenne-Guigues only: exact (confidence 1) rules.
    Exact,
}

/// Exact confidence comparison without floats: `a` vs `b` by
/// `support/antecedent_support`, cross-multiplied in `u128` so the
/// score order (and hence rule-id assignment) is deterministic across
/// platforms.
fn confidence_cmp(a: &Rule, b: &Rule) -> Ordering {
    let lhs = u128::from(a.support) * u128::from(b.antecedent_support);
    let rhs = u128::from(b.support) * u128::from(a.antecedent_support);
    lhs.cmp(&rhs)
}

/// Serving score order: confidence descending, then support descending,
/// then the canonical `(full itemset, antecedent)` key ascending so ties
/// are broken deterministically.
fn score_cmp(a: &Rule, b: &Rule) -> Ordering {
    confidence_cmp(b, a)
        .then_with(|| b.support.cmp(&a.support))
        .then_with(|| a.sort_key().cmp(&b.sort_key()))
}

/// The per-query cost counters a snapshot-level match reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchCost {
    /// Postings lists probed — one per distinct basket item.
    pub index_probes: u64,
    /// Distinct candidate rules examined by the merge. The whole point
    /// of the index: strictly fewer than `n_rules` whenever the basket
    /// misses part of the catalogue.
    pub rules_scanned: u64,
    /// Rules that actually fired.
    pub rules_fired: u64,
}

/// One immutable published view of the served basis.
///
/// Rule ids are assigned in serving score order (confidence desc,
/// support desc, canonical tie-break), so any id-sorted list — the
/// postings lists, a match result — is automatically score-sorted too.
#[derive(Debug)]
pub struct ServingSnapshot {
    epoch: u64,
    n_objects: usize,
    min_count: Support,
    /// Served rules, indexed by rule id (score order).
    rules: Vec<Rule>,
    /// `antecedent_len[id]` — how many postings lists must agree before
    /// rule `id` fires.
    antecedent_len: Vec<u32>,
    /// Item id → sorted rule ids whose antecedent contains the item.
    postings: Vec<Vec<u32>>,
    /// Rules with an empty antecedent (fire on every basket), sorted.
    always_fire: Vec<u32>,
}

impl ServingSnapshot {
    /// Builds a snapshot from a mined bundle: selects the basis, sorts
    /// it into score order, and constructs the antecedent index.
    pub fn from_bases(bases: &MinedBases, basis: ServedBasis, epoch: u64) -> Self {
        let mut rules: Vec<Rule> = bases.dg.rules().to_vec();
        match basis {
            ServedBasis::Exact => {}
            ServedBasis::Compact => {
                rules.extend(bases.luxenburger_reduced_rules().into_iter().cloned());
            }
            ServedBasis::Full => rules.extend(
                bases
                    .lux_full
                    .iter()
                    .filter(|r| bases.include_empty_antecedent || !r.antecedent.is_empty())
                    .cloned(),
            ),
        }
        rules.sort_unstable_by(score_cmp);
        // Two bases can carry the same (antecedent, consequent) pair;
        // the counts are ground truth so duplicates are *identical*
        // rules and land adjacent under the score sort.
        rules.dedup();

        let n_items = rules
            .iter()
            .flat_map(|r| r.antecedent.last())
            .map(|i| i.id() as usize + 1)
            .max()
            .unwrap_or(0);
        let mut postings = vec![Vec::new(); n_items];
        let mut antecedent_len = Vec::with_capacity(rules.len());
        let mut always_fire = Vec::new();
        for (id, rule) in rules.iter().enumerate() {
            let id = id as u32;
            antecedent_len.push(rule.antecedent.len() as u32);
            if rule.antecedent.is_empty() {
                always_fire.push(id);
            }
            for item in rule.antecedent.iter() {
                postings[item.id() as usize].push(id);
            }
        }
        // Ids were appended in increasing order, so every list is
        // already sorted — debug-checked, not re-sorted.
        debug_assert!(postings.iter().all(|p| p.windows(2).all(|w| w[0] < w[1])));
        ServingSnapshot {
            epoch,
            n_objects: bases.n_objects,
            min_count: bases.min_count,
            rules,
            antecedent_len,
            postings,
            always_fire,
        }
    }

    /// The stream epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Context size (rows) behind this snapshot.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Absolute support threshold behind this snapshot.
    pub fn min_count(&self) -> Support {
        self.min_count
    }

    /// Number of served rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// The served rules in score order (rule id = slice index).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule behind an id returned by a match.
    pub fn rule(&self, id: u32) -> &Rule {
        &self.rules[id as usize]
    }

    /// Sorts and dedups a raw basket into item-id order.
    fn normalize(basket: &[u32]) -> Vec<u32> {
        let mut basket = basket.to_vec();
        basket.sort_unstable();
        basket.dedup();
        basket
    }

    /// The index-driven merge. Walks the basket items' postings lists
    /// (plus the always-fire list) as a k-way merge over rule ids; a
    /// rule fires exactly when its multiplicity across the basket's
    /// postings equals its antecedent length, i.e. the whole antecedent
    /// is in the basket. Candidates emerge in ascending id = descending
    /// score order, so `on_fire` may stop early (`false`) for top-k.
    fn scan(&self, basket: &[u32], mut on_fire: impl FnMut(u32) -> bool) -> MatchCost {
        let mut cost = MatchCost {
            index_probes: basket.len() as u64,
            ..MatchCost::default()
        };
        let mut lists: Vec<&[u32]> = Vec::with_capacity(basket.len() + 1);
        for &item in basket {
            if let Some(p) = self.postings.get(item as usize) {
                if !p.is_empty() {
                    lists.push(p);
                }
            }
        }
        // The always-fire list rides along as one extra candidate
        // source contributing multiplicity 0 — which is exactly the
        // antecedent length of the rules it carries.
        let n_postings = lists.len();
        if !self.always_fire.is_empty() {
            lists.push(&self.always_fire);
        }
        let mut cursors = vec![0usize; lists.len()];
        loop {
            let mut min = u32::MAX;
            let mut found = false;
            for (l, &c) in lists.iter().zip(&cursors) {
                if let Some(&id) = l.get(c) {
                    if !found || id < min {
                        min = id;
                        found = true;
                    }
                }
            }
            if !found {
                break;
            }
            let mut multiplicity = 0u32;
            for (i, (l, c)) in lists.iter().zip(cursors.iter_mut()).enumerate() {
                if l.get(*c) == Some(&min) {
                    *c += 1;
                    if i < n_postings {
                        multiplicity += 1;
                    }
                }
            }
            cost.rules_scanned += 1;
            if multiplicity == self.antecedent_len[min as usize] {
                cost.rules_fired += 1;
                if !on_fire(min) {
                    break;
                }
            }
        }
        cost
    }

    /// All rules whose antecedent is contained in `basket`, as score-
    /// ordered rule ids, with the query's cost counters.
    ///
    /// `basket` need not be sorted or duplicate-free.
    pub fn match_basket_counted(&self, basket: &[u32]) -> (Vec<u32>, MatchCost) {
        let basket = Self::normalize(basket);
        let mut fired = Vec::new();
        let cost = self.scan(&basket, |id| {
            fired.push(id);
            true
        });
        (fired, cost)
    }

    /// All rules whose antecedent is contained in `basket`, best score
    /// first.
    pub fn match_basket(&self, basket: &[u32]) -> Vec<&Rule> {
        let (ids, _) = self.match_basket_counted(basket);
        ids.into_iter().map(|id| self.rule(id)).collect()
    }

    /// The `k` best-scoring firing rules. Short-circuits: the merge
    /// stops as soon as `k` rules have fired instead of draining the
    /// postings lists.
    pub fn top_k(&self, basket: &[u32], k: usize) -> Vec<&Rule> {
        let basket = Self::normalize(basket);
        let mut fired = Vec::with_capacity(k.min(16));
        if k > 0 {
            self.scan(&basket, |id| {
                fired.push(id);
                fired.len() < k
            });
        }
        fired.into_iter().map(|id| self.rule(id)).collect()
    }

    /// Up to `k` consequent items not already in `basket`, each tagged
    /// with the best (first-firing) rule that proposed it. Firing rules
    /// are visited best-first, so each item's score is the best
    /// available.
    pub fn recommend(&self, basket: &[u32], k: usize) -> Vec<Recommendation> {
        self.recommend_counted(basket, k).0
    }

    /// [`ServingSnapshot::recommend`] with the query's cost counters.
    pub fn recommend_counted(&self, basket: &[u32], k: usize) -> (Vec<Recommendation>, MatchCost) {
        let basket = Self::normalize(basket);
        let mut out: Vec<Recommendation> = Vec::new();
        if k == 0 {
            let cost = MatchCost {
                index_probes: basket.len() as u64,
                ..MatchCost::default()
            };
            return (out, cost);
        }
        let cost = self.scan(&basket, |id| {
            let rule = self.rule(id);
            for item in rule.consequent.iter() {
                let item = item.id();
                if basket.binary_search(&item).is_err() && !out.iter().any(|r| r.item == item) {
                    out.push(Recommendation {
                        item,
                        rule_id: id,
                        confidence: rule.confidence(),
                        support: rule.support,
                    });
                    if out.len() == k {
                        return false;
                    }
                }
            }
            true
        });
        (out, cost)
    }

    /// The brute-force oracle the index replaces: a linear scan testing
    /// every served rule's antecedent against the basket with the
    /// `kernels` sorted-intersection primitive. Returns the fired ids
    /// (same order as [`ServingSnapshot::match_basket_counted`]) and the
    /// number of rules scanned (always `n_rules`).
    pub fn match_basket_linear(&self, basket: &[u32]) -> (Vec<u32>, u64) {
        let basket = Self::normalize(basket);
        let items: Vec<Item> = basket.iter().copied().map(Item).collect();
        let mut fired = Vec::new();
        for (id, rule) in self.rules.iter().enumerate() {
            let ant = rule.antecedent.as_slice();
            if ant.len() <= items.len() && kernels::intersect_count_sorted(ant, &items) == ant.len()
            {
                fired.push(id as u32);
            }
        }
        (fired, self.rules.len() as u64)
    }
}

/// One basket's match result: the snapshot it ran against (kept alive
/// for rule lookups) plus the firing rule ids in score order.
#[derive(Debug)]
pub struct BasketMatch {
    snapshot: Arc<ServingSnapshot>,
    fired: Vec<u32>,
}

impl BasketMatch {
    /// Number of rules that fired.
    pub fn len(&self) -> usize {
        self.fired.len()
    }

    /// Whether nothing fired.
    pub fn is_empty(&self) -> bool {
        self.fired.is_empty()
    }

    /// The firing rule ids, best score first.
    pub fn ids(&self) -> &[u32] {
        &self.fired
    }

    /// The firing rules, best score first.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.fired.iter().map(|&id| self.snapshot.rule(id))
    }

    /// The epoch of the snapshot this match observed.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The snapshot the match ran against.
    pub fn snapshot(&self) -> &Arc<ServingSnapshot> {
        &self.snapshot
    }
}

/// One recommended item from [`ServingSnapshot::recommend`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The proposed item id.
    pub item: u32,
    /// The id of the (best) rule that proposed it.
    pub rule_id: u32,
    /// That rule's confidence.
    pub confidence: f64,
    /// That rule's support count.
    pub support: Support,
}

/// Cumulative serving counters, readable from any handle. Deterministic
/// for a deterministic workload — the serving bench gates them as exact
/// baselines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeStats {
    /// Queries answered (match, top-k, recommend).
    pub queries: u64,
    /// Postings lists probed across all queries.
    pub index_probes: u64,
    /// Candidate rules examined by the index merges.
    pub rules_scanned: u64,
    /// Rules fired across all queries.
    pub rules_fired: u64,
    /// Snapshots published by the writer (the seed snapshot counts).
    pub snapshots_published: u64,
    /// Snapshot acquisitions that missed a reader's cache.
    pub snapshot_refreshes: u64,
}

/// A retired snapshot pointer parked for deferred reclamation. The
/// pointer came from `Arc::into_raw`, is only ever turned back into an
/// `Arc` once, and the `Mutex` around the park list makes the handoff
/// to `Shared::drop` safe — hence `Send`.
struct Retired(*const ServingSnapshot);
// SAFETY: `Retired` is a uniquely-owned `Arc` strong count in disguise
// (see above); `ServingSnapshot` itself is `Send + Sync`.
unsafe impl Send for Retired {}

/// The lock-free publication cell shared by the writer and all readers.
struct Shared {
    /// The current snapshot. Owns one `Arc` strong count, transferred
    /// via `Arc::into_raw` / `Arc::from_raw`.
    current: AtomicPtr<ServingSnapshot>,
    /// The current snapshot's epoch — the readers' cheap staleness
    /// check (one load instead of an acquire).
    epoch: AtomicU64,
    /// Readers currently inside [`Shared::acquire`]'s pointer-load +
    /// count-increment window. The writer reclaims retired snapshots
    /// only when this is 0.
    in_flight: AtomicUsize,
    /// Snapshots unpublished while readers were in flight; the single
    /// writer (and finally `Drop`) drains this, so the mutex is never
    /// contended and never touched on the read path.
    retired: Mutex<Vec<Retired>>,
    queries: AtomicU64,
    index_probes: AtomicU64,
    rules_scanned: AtomicU64,
    rules_fired: AtomicU64,
    snapshots_published: AtomicU64,
    snapshot_refreshes: AtomicU64,
}

impl Shared {
    fn new(first: Arc<ServingSnapshot>) -> Self {
        let epoch = first.epoch();
        Shared {
            current: AtomicPtr::new(Arc::into_raw(first).cast_mut()),
            epoch: AtomicU64::new(epoch),
            in_flight: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
            queries: AtomicU64::new(0),
            index_probes: AtomicU64::new(0),
            rules_scanned: AtomicU64::new(0),
            rules_fired: AtomicU64::new(0),
            snapshots_published: AtomicU64::new(1),
            snapshot_refreshes: AtomicU64::new(0),
        }
    }

    /// Wait-free snapshot acquisition: announce the read, load the
    /// pointer, take a strong count, withdraw. No locks, no retries.
    ///
    /// Why this is sound: the writer only reclaims a retired pointer
    /// after observing `in_flight == 0` with `SeqCst`. In the single
    /// total order of `SeqCst` operations, every reader's announcement
    /// (`fetch_add`) is either before that observation — then so is its
    /// withdrawal (`fetch_sub`), meaning its count-increment on the old
    /// snapshot already happened and keeps it alive — or after it, in
    /// which case its subsequent pointer load is also after the writer's
    /// swap and can only see the *new* pointer, never the retired one.
    fn acquire(&self) -> Arc<ServingSnapshot> {
        self.in_flight.fetch_add(1, MemOrd::SeqCst);
        let ptr = self.current.load(MemOrd::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the in-flight
        // announcement above keeps the writer from reclaiming it (see
        // the ordering argument in the doc comment).
        let snap = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        self.in_flight.fetch_sub(1, MemOrd::SeqCst);
        self.snapshot_refreshes.fetch_add(1, MemOrd::Relaxed);
        snap
    }

    /// Publishes `snap` (single writer only): swap the pointer, bump the
    /// epoch, park the old snapshot, and reclaim the park list if no
    /// reader is mid-acquisition.
    fn publish(&self, snap: Arc<ServingSnapshot>) {
        let epoch = snap.epoch();
        let new_ptr = Arc::into_raw(snap).cast_mut();
        let old = self.current.swap(new_ptr, MemOrd::SeqCst);
        self.epoch.store(epoch, MemOrd::SeqCst);
        let mut retired = self.retired.lock().expect("retired list poisoned");
        retired.push(Retired(old));
        if self.in_flight.load(MemOrd::SeqCst) == 0 {
            for Retired(ptr) in retired.drain(..) {
                // SAFETY: each parked pointer owns exactly one strong
                // count (from `Arc::into_raw` at publish time), no
                // reader acquisition is in flight, and any reader that
                // already acquired holds its *own* count — dropping
                // ours cannot free a snapshot still in use.
                unsafe { drop(Arc::from_raw(ptr)) };
            }
        }
        drop(retired);
        self.snapshots_published.fetch_add(1, MemOrd::Relaxed);
    }

    fn record(&self, cost: MatchCost) {
        self.queries.fetch_add(1, MemOrd::Relaxed);
        self.index_probes
            .fetch_add(cost.index_probes, MemOrd::Relaxed);
        self.rules_scanned
            .fetch_add(cost.rules_scanned, MemOrd::Relaxed);
        self.rules_fired
            .fetch_add(cost.rules_fired, MemOrd::Relaxed);
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            queries: self.queries.load(MemOrd::Relaxed),
            index_probes: self.index_probes.load(MemOrd::Relaxed),
            rules_scanned: self.rules_scanned.load(MemOrd::Relaxed),
            rules_fired: self.rules_fired.load(MemOrd::Relaxed),
            snapshots_published: self.snapshots_published.load(MemOrd::Relaxed),
            snapshot_refreshes: self.snapshot_refreshes.load(MemOrd::Relaxed),
        }
    }
}

impl Drop for Shared {
    fn drop(&mut self) {
        // All readers are gone (they hold `Arc<Shared>`), so every
        // parked count and the current one can be released.
        for Retired(ptr) in self
            .retired
            .get_mut()
            .expect("retired list poisoned")
            .drain(..)
        {
            // SAFETY: as in `publish`, each parked pointer owns one
            // strong count and no reader can be in flight during drop.
            unsafe { drop(Arc::from_raw(ptr)) };
        }
        let current = *self.current.get_mut();
        // SAFETY: the cell owns one strong count on the current
        // snapshot; this releases it exactly once.
        unsafe { drop(Arc::from_raw(current)) };
    }
}

/// A wait-free reader handle. Cheap to clone — hand one to each query
/// thread. The handle caches the snapshot it last used and revalidates
/// it with a single epoch load per query.
#[derive(Clone)]
pub struct RuleReader {
    shared: Arc<Shared>,
    cached: Arc<ServingSnapshot>,
}

impl RuleReader {
    /// The snapshot the reader would query right now, refreshing the
    /// cache if the writer has published since.
    pub fn refresh(&mut self) -> &Arc<ServingSnapshot> {
        if self.shared.epoch.load(MemOrd::SeqCst) != self.cached.epoch() {
            self.cached = self.shared.acquire();
        }
        &self.cached
    }

    /// The cached snapshot without revalidation.
    pub fn snapshot(&self) -> &Arc<ServingSnapshot> {
        &self.cached
    }

    /// The epoch of the cached snapshot.
    pub fn epoch(&self) -> u64 {
        self.cached.epoch()
    }

    /// Matches a basket against the current snapshot via the antecedent
    /// index. Wait-free; never blocks the writer.
    pub fn match_basket(&mut self, basket: &[u32]) -> BasketMatch {
        self.refresh();
        let (fired, cost) = self.cached.match_basket_counted(basket);
        self.shared.record(cost);
        BasketMatch {
            snapshot: Arc::clone(&self.cached),
            fired,
        }
    }

    /// The `k` best-scoring rules firing on `basket` (short-circuiting
    /// merge), against the current snapshot.
    pub fn top_k(&mut self, basket: &[u32], k: usize) -> BasketMatch {
        self.refresh();
        let basket_sorted = ServingSnapshot::normalize(basket);
        let mut fired = Vec::with_capacity(k.min(16));
        let cost = if k == 0 {
            MatchCost {
                index_probes: basket_sorted.len() as u64,
                ..MatchCost::default()
            }
        } else {
            self.cached.scan(&basket_sorted, |id| {
                fired.push(id);
                fired.len() < k
            })
        };
        self.shared.record(cost);
        BasketMatch {
            snapshot: Arc::clone(&self.cached),
            fired,
        }
    }

    /// Up to `k` recommended items for `basket`, best rule first,
    /// against the current snapshot.
    pub fn recommend(&mut self, basket: &[u32], k: usize) -> Vec<Recommendation> {
        self.refresh();
        let (out, cost) = self.cached.recommend_counted(basket, k);
        self.shared.record(cost);
        out
    }

    /// The cumulative serving counters (shared with the server).
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }
}

/// The single-writer serving front: owns the [`StreamingMiner`], ingests
/// batches, and publishes epoch-swapped snapshots readers consume
/// wait-free.
pub struct RuleServer {
    miner: StreamingMiner,
    basis: ServedBasis,
    shared: Arc<Shared>,
}

impl RuleServer {
    /// Opens a server over `db` with `config`'s thresholds, publishing
    /// the seed snapshot immediately.
    pub fn open(config: RuleMiner, db: TransactionDb, basis: ServedBasis) -> Self {
        let mut miner = config.streaming(db);
        let epoch = miner.epoch();
        let snapshot = Arc::new(ServingSnapshot::from_bases(miner.bases(), basis, epoch));
        RuleServer {
            miner,
            basis,
            shared: Arc::new(Shared::new(snapshot)),
        }
    }

    /// Switches the served basis and republishes at the same epoch.
    pub fn with_basis(mut self, basis: ServedBasis) -> Self {
        self.basis = basis;
        self.republish();
        self
    }

    /// Sets the embedded miner's retention [`Window`] (builder-style).
    /// Subsequent [`RuleServer::ingest`] calls expire the out-of-window
    /// prefix and republish the windowed snapshot like any other batch.
    pub fn window(mut self, window: Window) -> Self {
        self.miner.set_window(window);
        self
    }

    /// Ingests a batch: pushes it through the streaming miner (which
    /// appends it and expires whatever the miner's window no longer
    /// retains), rebuilds the snapshot from the patched bases, and
    /// publishes it. Readers keep answering on the old epoch until the
    /// swap lands; the swap itself never waits for them.
    pub fn ingest(&mut self, rows: Vec<Vec<u32>>) -> Result<BasesDelta, StreamError> {
        let delta = self.miner.push_batch(rows)?;
        if delta.appended > 0 || delta.expired > 0 {
            self.republish();
        }
        Ok(delta)
    }

    /// Rebuilds and publishes a snapshot from the miner's current bases.
    fn republish(&mut self) {
        let epoch = self.miner.epoch();
        let snapshot = Arc::new(ServingSnapshot::from_bases(
            self.miner.bases(),
            self.basis,
            epoch,
        ));
        self.shared.publish(snapshot);
    }

    /// A new reader handle, pre-warmed with the current snapshot.
    pub fn reader(&self) -> RuleReader {
        RuleReader {
            cached: self.shared.acquire(),
            shared: Arc::clone(&self.shared),
        }
    }

    /// The current snapshot (writer's view).
    pub fn snapshot(&self) -> Arc<ServingSnapshot> {
        self.shared.acquire()
    }

    /// The current stream epoch.
    pub fn epoch(&self) -> u64 {
        self.miner.epoch()
    }

    /// Rows in the served context.
    pub fn n_objects(&self) -> usize {
        self.miner.n_objects()
    }

    /// The served basis flavour.
    pub fn basis(&self) -> ServedBasis {
        self.basis
    }

    /// Cumulative serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// The underlying streaming miner (e.g. for segment inspection).
    pub fn miner(&self) -> &StreamingMiner {
        &self.miner
    }

    /// Writes a crash-safe snapshot of the serving session's writer
    /// state into `dir` as a fresh checkpoint generation (temp-write →
    /// flush → atomic rename; see the [checkpoint
    /// format](crate::checkpoint)). Readers are unaffected — the
    /// snapshot is taken from the writer side between batches. The
    /// persisted session can later be rebuilt with
    /// [`CheckpointedMiner::recover`] and re-wrapped in a server.
    ///
    /// [`CheckpointedMiner::recover`]: crate::checkpoint::CheckpointedMiner::recover
    pub fn checkpoint(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<std::path::PathBuf, crate::checkpoint::CheckpointError> {
        crate::checkpoint::write_snapshot(&self.miner, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::RuleMiner;
    use rulebases_dataset::{paper_example, MinSupport};

    fn server() -> RuleServer {
        RuleMiner::new(MinSupport::Fraction(0.4))
            .min_confidence(0.5)
            .serving(paper_example())
    }

    #[test]
    fn snapshot_ids_are_score_ordered() {
        let snap = server().snapshot();
        for pair in snap.rules().windows(2) {
            assert_ne!(
                score_cmp(&pair[0], &pair[1]),
                Ordering::Greater,
                "rule ids must be assigned in score order"
            );
        }
    }

    #[test]
    fn index_match_equals_linear_oracle() {
        let snap = server().snapshot();
        let baskets: &[&[u32]] = &[
            &[],
            &[0],
            &[0, 2],
            &[2, 0],
            &[0, 1, 2, 3, 4],
            &[4, 3, 2, 1, 0],
            &[3, 3, 3],
            &[99],
        ];
        for basket in baskets {
            let (indexed, cost) = snap.match_basket_counted(basket);
            let (linear, scanned) = snap.match_basket_linear(basket);
            assert_eq!(indexed, linear, "basket {basket:?}");
            assert!(cost.rules_scanned <= scanned);
        }
    }

    #[test]
    fn index_scans_fewer_rules_than_linear_on_partial_baskets() {
        let snap = server().snapshot();
        let (_, cost) = snap.match_basket_counted(&[0]);
        let (_, linear) = snap.match_basket_linear(&[0]);
        assert!(
            cost.rules_scanned < linear,
            "index scanned {} vs linear {linear}",
            cost.rules_scanned
        );
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_match() {
        let snap = server().snapshot();
        let basket = &[0, 1, 2, 3, 4][..];
        let (all, _) = snap.match_basket_counted(basket);
        for k in 0..=all.len() + 1 {
            let got: Vec<u32> = snap
                .top_k(basket, k)
                .iter()
                .map(|r| {
                    snap.rules()
                        .iter()
                        .position(|s| s == *r)
                        .expect("top-k rule served") as u32
                })
                .collect();
            assert_eq!(got, all[..k.min(all.len())].to_vec(), "k={k}");
        }
    }

    #[test]
    fn recommendations_exclude_basket_items_and_dedup() {
        let snap = server().snapshot();
        let basket = &[0, 2][..];
        let recs = snap.recommend(basket, 8);
        let mut seen = Vec::new();
        for rec in &recs {
            assert!(!basket.contains(&rec.item));
            assert!(!seen.contains(&rec.item), "duplicate recommendation");
            seen.push(rec.item);
        }
        // Best-first: confidences never improve later in the list for
        // repeated queries of the same rule (scores are non-increasing
        // per proposing rule id).
        for pair in recs.windows(2) {
            assert!(pair[0].rule_id <= pair[1].rule_id);
        }
    }

    #[test]
    fn ingest_publishes_and_readers_observe_new_epochs() {
        let mut server = server();
        let mut reader = server.reader();
        let before = reader.match_basket(&[0, 2]).epoch();
        let delta = server.ingest(vec![vec![0, 1, 2], vec![0, 2, 4]]).unwrap();
        assert_eq!(delta.appended, 2);
        let after = reader.match_basket(&[0, 2]).epoch();
        assert!(after > before);
        assert_eq!(after, server.epoch());
        // Empty batch: no republish, epoch stands.
        server.ingest(Vec::new()).unwrap();
        assert_eq!(reader.match_basket(&[0]).epoch(), after);
    }

    #[test]
    fn stale_readers_keep_their_snapshot_alive() {
        let mut server = server();
        let reader = server.reader();
        let old = Arc::clone(reader.snapshot());
        let old_epoch = old.epoch();
        for batch in 0..4 {
            server
                .ingest(vec![vec![batch % 5, (batch + 1) % 5]])
                .unwrap();
        }
        // The pinned snapshot is still fully usable after 4 publishes:
        // the full universe fires every served rule.
        assert_eq!(old.epoch(), old_epoch);
        let universe: Vec<u32> = (0..=5).collect();
        let (fired, _) = old.match_basket_counted(&universe);
        assert_eq!(fired.len(), old.n_rules());
        assert!(server.snapshot().epoch() > old_epoch);
    }

    #[test]
    fn stats_accumulate_deterministically() {
        let server = server();
        let mut reader = server.reader();
        let m = reader.match_basket(&[0, 2]);
        let stats = server.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.index_probes, 2);
        assert_eq!(stats.rules_fired, m.len() as u64);
        assert_eq!(stats.snapshots_published, 1);
        let again = reader.stats();
        assert_eq!(again, stats, "reader and server share one counter set");
    }

    #[test]
    fn served_basis_flavours_nest() {
        let exact = server().with_basis(ServedBasis::Exact).snapshot().n_rules();
        let compact = server().snapshot().n_rules();
        let full = server().with_basis(ServedBasis::Full).snapshot().n_rules();
        assert!(exact <= compact);
        assert!(compact <= full);
        assert!(exact > 0, "paper example has DG rules");
    }
}
