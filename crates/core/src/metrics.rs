//! Rule interestingness measures.
//!
//! Beyond support and confidence, the post-2000 literature evaluates rule
//! bases with several derived measures. All of them are functions of
//! three counts: `supp(X∪Z)`, `supp(X)`, `supp(Z)` plus the context size
//! `|O|`, so they can be computed for any rule derived from the bases
//! without going back to the data.

use crate::rule::Rule;
use rulebases_dataset::Support;
use serde::{Deserialize, Serialize};

/// Interestingness measures of one rule.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RuleMetrics {
    /// Relative support of the rule.
    pub support: f64,
    /// Confidence `P(Z|X)`.
    pub confidence: f64,
    /// Lift `P(Z|X) / P(Z)`; 1 = independence.
    pub lift: f64,
    /// Leverage `P(XZ) − P(X)P(Z)`.
    pub leverage: f64,
    /// Conviction `(1 − P(Z)) / (1 − conf)`; `f64::INFINITY` for exact
    /// rules.
    pub conviction: f64,
    /// Jaccard similarity `P(XZ) / P(X ∪ Z-support union)`.
    pub jaccard: f64,
}

impl RuleMetrics {
    /// Computes all measures from the rule plus the consequent's support
    /// and the context size.
    ///
    /// # Panics
    ///
    /// Panics if `n_objects` is 0 or `consequent_support` is 0.
    pub fn compute(rule: &Rule, consequent_support: Support, n_objects: usize) -> Self {
        assert!(n_objects > 0, "empty context");
        assert!(consequent_support > 0, "unsupported consequent");
        let n = n_objects as f64;
        let p_xz = rule.support as f64 / n;
        let p_x = rule.antecedent_support as f64 / n;
        let p_z = consequent_support as f64 / n;
        let confidence = rule.confidence();

        let conviction = if rule.is_exact() {
            f64::INFINITY
        } else {
            (1.0 - p_z) / (1.0 - confidence)
        };
        let union = p_x + p_z - p_xz;
        RuleMetrics {
            support: p_xz,
            confidence,
            lift: confidence / p_z,
            leverage: p_xz - p_x * p_z,
            conviction,
            jaccard: if union > 0.0 { p_xz / union } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::Itemset;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn independent_items_have_unit_lift() {
        // X in 1/2 of objects, Z in 1/2, XZ in 1/4 of 8 objects.
        let rule = Rule::new(set(&[0]), set(&[1]), 2, 4);
        let m = RuleMetrics::compute(&rule, 4, 8);
        assert!((m.lift - 1.0).abs() < 1e-12);
        assert!(m.leverage.abs() < 1e-12);
        assert!((m.confidence - 0.5).abs() < 1e-12);
        assert!((m.conviction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_rule_metrics() {
        // B → E in the paper example: supp 4/5, conf 1.
        let rule = Rule::new(set(&[2]), set(&[5]), 4, 4);
        let m = RuleMetrics::compute(&rule, 4, 5);
        assert_eq!(m.confidence, 1.0);
        assert!((m.lift - 1.25).abs() < 1e-12);
        assert!(m.conviction.is_infinite());
        assert!((m.support - 0.8).abs() < 1e-12);
        assert!((m.jaccard - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approximate_rule_metrics() {
        // C → A: supp(CA)=3, supp(C)=4, supp(A)=3, |O|=5.
        let rule = Rule::new(set(&[3]), set(&[1]), 3, 4);
        let m = RuleMetrics::compute(&rule, 3, 5);
        assert!((m.confidence - 0.75).abs() < 1e-12);
        assert!((m.lift - 1.25).abs() < 1e-12);
        assert!((m.leverage - (0.6 - 0.8 * 0.6)).abs() < 1e-12);
        assert!((m.conviction - (1.0 - 0.6) / 0.25).abs() < 1e-12);
        assert!((m.jaccard - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty context")]
    fn empty_context_rejected() {
        let rule = Rule::new(set(&[0]), set(&[1]), 1, 1);
        let _ = RuleMetrics::compute(&rule, 1, 0);
    }
}
