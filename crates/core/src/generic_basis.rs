//! Generic and informative bases (the companion-paper extension).
//!
//! The same author group's follow-up (Bastide, Pasquier, Taouil, Stumme,
//! Lakhal — *"Mining minimal non-redundant association rules using
//! frequent closed itemsets"*, CL 2000) replaces the pseudo-closed
//! antecedents of the Duquenne-Guigues basis with **minimal generators**,
//! trading minimum cardinality for rules that are individually *minimal
//! non-redundant*: smallest antecedent, largest consequent, and directly
//! readable supports.
//!
//! * **Generic basis** (exact rules): `G → h(G) ∖ G` for every frequent
//!   minimal generator `G` with `G ≠ h(G)`.
//! * **Informative basis** (approximate rules): `G → C ∖ G` for every
//!   frequent minimal generator `G` and closed `C ⊃ h(G)` with
//!   confidence ≥ minconf; its *transitive reduction* keeps only `C`
//!   covering `h(G)` in the iceberg lattice.

use crate::rule::Rule;
use rulebases_lattice::IcebergLattice;
use rulebases_mining::{ClosedItemsets, GeneratorSet};

/// The generic basis for exact rules.
///
/// Sound and complete for exact rules (like Duquenne-Guigues) but not of
/// minimum cardinality; each rule has a minimal antecedent.
pub fn generic_basis(generators: &GeneratorSet, fc: &ClosedItemsets) -> Vec<Rule> {
    let mut rules = Vec::new();
    for (g, support) in generators.iter() {
        let (closure, closure_support) = fc
            .closure_of(g)
            .unwrap_or_else(|| panic!("generator {g:?} lacks a closure in FC"));
        debug_assert_eq!(support, closure_support);
        if closure.len() == g.len() {
            continue; // the generator is closed: no exact rule
        }
        if g.is_empty() {
            // ∅ → h(∅) is kept: it is the frequency statement the DG basis
            // also carries when the bottom is non-empty.
        }
        rules.push(Rule::new(
            g.clone(),
            closure.difference(g),
            support,
            support,
        ));
    }
    rules.sort();
    rules
}

/// The informative basis for approximate rules (full variant).
pub fn informative_basis(
    generators: &GeneratorSet,
    fc: &ClosedItemsets,
    min_confidence: f64,
    include_empty_antecedent: bool,
) -> Vec<Rule> {
    assert!((0.0..=1.0).contains(&min_confidence));
    let mut rules = Vec::new();
    for (g, g_support) in generators.iter() {
        if g.is_empty() && !include_empty_antecedent {
            continue;
        }
        let (closure, _) = fc
            .closure_of(g)
            .unwrap_or_else(|| panic!("generator {g:?} lacks a closure in FC"));
        for (c, c_support) in fc.iter() {
            if !closure.is_proper_subset_of(c) {
                continue;
            }
            if (c_support as f64) < min_confidence * g_support as f64 {
                continue;
            }
            rules.push(Rule::new(g.clone(), c.difference(g), c_support, g_support));
        }
    }
    rules.sort();
    rules
}

/// The transitive reduction of the informative basis: consequent closures
/// restricted to the upper covers of `h(G)` in the iceberg lattice.
pub fn informative_basis_reduced(
    generators: &GeneratorSet,
    fc: &ClosedItemsets,
    lattice: &IcebergLattice,
    min_confidence: f64,
    include_empty_antecedent: bool,
) -> Vec<Rule> {
    assert!((0.0..=1.0).contains(&min_confidence));
    let mut rules = Vec::new();
    for (g, g_support) in generators.iter() {
        if g.is_empty() && !include_empty_antecedent {
            continue;
        }
        let (closure, _) = fc
            .closure_of(g)
            .unwrap_or_else(|| panic!("generator {g:?} lacks a closure in FC"));
        let Some(node) = lattice.position(closure) else {
            continue;
        };
        for &cover in lattice.upper_covers(node) {
            let (c, c_support) = lattice.node(cover);
            if (c_support as f64) < min_confidence * g_support as f64 {
                continue;
            }
            rules.push(Rule::new(g.clone(), c.difference(g), c_support, g_support));
        }
    }
    rules.sort();
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::{paper_example, Itemset, MinSupport, MiningContext};
    use rulebases_mining::brute::brute_closed;
    use rulebases_mining::mine_generators;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn setup() -> (MiningContext, GeneratorSet, ClosedItemsets, IcebergLattice) {
        let ctx = MiningContext::new(paper_example());
        let fc = brute_closed(&ctx, MinSupport::Count(2));
        let generators = mine_generators(&ctx, 2);
        let lattice = IcebergLattice::from_closed(&fc);
        (ctx, generators, fc, lattice)
    }

    #[test]
    fn generic_basis_of_paper_example() {
        let (_, gens, fc, _) = setup();
        let basis = generic_basis(&gens, &fc);
        // Published generic basis: A→C, B→E, E→B, AB→CE, AE→BC, BC→E,
        // CE→B (generators that are not closed).
        assert_eq!(basis.len(), 7);
        assert!(basis.contains(&Rule::new(set(&[1]), set(&[3]), 3, 3)));
        assert!(basis.contains(&Rule::new(set(&[1, 2]), set(&[3, 5]), 2, 2)));
        assert!(basis.contains(&Rule::new(set(&[3, 5]), set(&[2]), 3, 3)));
        assert!(basis.iter().all(Rule::is_exact));
    }

    #[test]
    fn generic_basis_rules_hold() {
        let (ctx, gens, fc, _) = setup();
        for rule in generic_basis(&gens, &fc) {
            assert_eq!(
                ctx.support(&rule.antecedent),
                ctx.support(&rule.full_itemset())
            );
        }
    }

    #[test]
    fn generic_antecedents_are_minimal() {
        let (ctx, gens, fc, _) = setup();
        for rule in generic_basis(&gens, &fc) {
            for facet in rule.antecedent.facets() {
                assert_ne!(
                    ctx.support(&facet),
                    ctx.support(&rule.antecedent),
                    "antecedent of {rule} is not a minimal generator"
                );
            }
        }
    }

    #[test]
    fn informative_basis_confidences() {
        let (ctx, gens, fc, _) = setup();
        let basis = informative_basis(&gens, &fc, 0.5, false);
        assert!(!basis.is_empty());
        for rule in &basis {
            assert!(!rule.is_exact());
            assert!(rule.confidence() >= 0.5);
            assert_eq!(ctx.support(&rule.antecedent), rule.antecedent_support);
            // The spanned set closes to the consequent's closed set.
            assert_eq!(ctx.support(&rule.full_itemset()), rule.support);
        }
    }

    #[test]
    fn reduced_informative_is_subset_of_full() {
        let (_, gens, fc, lattice) = setup();
        for conf in [0.0, 0.5, 0.75] {
            let full = informative_basis(&gens, &fc, conf, false);
            let reduced = informative_basis_reduced(&gens, &fc, &lattice, conf, false);
            assert!(reduced.len() <= full.len());
            for rule in &reduced {
                assert!(full.contains(rule), "{rule} missing from full basis");
            }
        }
    }

    #[test]
    fn informative_antecedents_smaller_than_luxenburger() {
        // Informative antecedents are generators (minimal); Luxenburger
        // antecedents are closed sets (maximal in their class). For the
        // class {B, E} → BE the informative rule B → CE is shorter than
        // BE → C.
        let (_, gens, fc, _) = setup();
        let basis = informative_basis(&gens, &fc, 0.5, false);
        assert!(basis.contains(&Rule::new(set(&[2]), set(&[3, 5]), 3, 4)));
    }

    #[test]
    fn empty_generator_toggle() {
        let (_, gens, fc, _) = setup();
        let with = informative_basis(&gens, &fc, 0.0, true);
        let without = informative_basis(&gens, &fc, 0.0, false);
        // ∅ is below the 5 non-empty closed sets.
        assert_eq!(with.len(), without.len() + 5);
    }
}
