//! High-level facade: from a transaction database to the rule bases.
//!
//! [`RuleMiner`] wires the whole pipeline together — context, frequent
//! itemsets (Apriori), frequent closed itemsets (Close / A-Close / CHARM),
//! iceberg lattice, Duquenne-Guigues basis, and Luxenburger bases — and
//! returns a [`MinedBases`] bundle that can enumerate or derive any rule
//! family and summarize itself as a [`BasisReport`].

use crate::all_rules::{all_rules, count_all_rules};
use crate::approx::{all_approximate_rules, LuxenburgerBasis};
use crate::derive::{derive_approximate_rules, derive_exact_rules, ApproxDerivation};
use crate::exact::{all_exact_rules, count_exact_rules, DuquenneGuiguesBasis};
use crate::fused::{self, PipelineKind};
use crate::report::BasisReport;
use crate::rule::Rule;
use rulebases_dataset::{
    EngineKind, Itemset, MinSupport, MiningContext, Parallelism, Support, TransactionDb,
};
use rulebases_lattice::IcebergLattice;
use rulebases_mining::{Apriori, ClosedAlgorithm, ClosedItemsets, FrequentItemsets};

/// Builder for a full bases-mining run.
#[derive(Clone, Debug)]
pub struct RuleMiner {
    min_support: MinSupport,
    min_confidence: f64,
    algorithm: ClosedAlgorithm,
    include_empty_antecedent: bool,
    engine: EngineKind,
    parallelism: Parallelism,
    pipeline: PipelineKind,
}

impl RuleMiner {
    /// Creates a miner at the given minimum support; other parameters
    /// default to `min_confidence = 0.5`, the Close algorithm, no
    /// empty-antecedent rules, the density/size-selected
    /// [`EngineKind::Auto`] backend, and [`Parallelism::Auto`] threads.
    pub fn new(min_support: impl Into<MinSupport>) -> Self {
        RuleMiner {
            min_support: min_support.into(),
            min_confidence: 0.5,
            algorithm: ClosedAlgorithm::Close,
            include_empty_antecedent: false,
            engine: EngineKind::Auto,
            parallelism: Parallelism::Auto,
            pipeline: PipelineKind::Staged,
        }
    }

    /// Sets the confidence threshold for approximate rules.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn min_confidence(mut self, minconf: f64) -> Self {
        assert!((0.0..=1.0).contains(&minconf), "minconf outside [0, 1]");
        self.min_confidence = minconf;
        self
    }

    /// Selects the closed-itemset algorithm.
    pub fn algorithm(mut self, algorithm: ClosedAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Selects the [`SupportEngine`] backend the pipeline mines through
    /// (e.g. `EngineKind::Sharded { .. }` for row-sharded parallel
    /// counting). Applies when the miner builds its own context
    /// ([`RuleMiner::mine`]); [`RuleMiner::mine_context`] keeps the
    /// engine the caller's context already carries.
    ///
    /// [`SupportEngine`]: rulebases_dataset::SupportEngine
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the thread policy for the mining phases (levelwise candidate
    /// counting and closure fan-outs). `Off` forces the sequential
    /// paths; the default `Auto` honours `RULEBASES_THREADS` and the
    /// machine's parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Also emit rules with an empty antecedent (frequency statements
    /// `∅ → C`); off by default.
    pub fn include_empty_antecedent(mut self, include: bool) -> Self {
        self.include_empty_antecedent = include;
        self
    }

    /// Selects the pipeline structure: the default
    /// [`PipelineKind::Staged`] three-pass oracle, or the
    /// [`PipelineKind::Fused`] one-pass traversal (see [`crate::fused`]).
    /// Both produce identical bases — the fused path just gets there with
    /// one lattice walk and no Apriori re-scan.
    pub fn pipeline(mut self, pipeline: PipelineKind) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Opens a streaming session seeded with `db` (possibly empty): the
    /// returned [`StreamingMiner`] keeps engine, closed-set lattice, and
    /// all three bases live while batches arrive through
    /// [`StreamingMiner::push_batch`] — the configured thresholds rescale
    /// to the growing row count, and the batch pipelines are the
    /// degenerate one-batch case. The `pipeline` setting is ignored here:
    /// a stream always maintains the fused shape.
    ///
    /// [`StreamingMiner`]: crate::stream::StreamingMiner
    /// [`StreamingMiner::push_batch`]: crate::stream::StreamingMiner::push_batch
    pub fn streaming(&self, db: TransactionDb) -> crate::stream::StreamingMiner {
        crate::stream::StreamingMiner::new(self.clone(), db)
    }

    /// Opens a concurrent serving session seeded with `db`: a
    /// [`RuleServer`] wrapping a streaming writer that publishes
    /// epoch-swapped snapshots of the compact basis pair
    /// ([`ServedBasis::Compact`]) for wait-free reader queries. Use
    /// [`RuleServer::with_basis`] to serve a different basis flavour.
    ///
    /// [`RuleServer`]: crate::serve::RuleServer
    /// [`RuleServer::with_basis`]: crate::serve::RuleServer::with_basis
    /// [`ServedBasis::Compact`]: crate::serve::ServedBasis::Compact
    pub fn serving(&self, db: TransactionDb) -> crate::serve::RuleServer {
        crate::serve::RuleServer::open(self.clone(), db, crate::serve::ServedBasis::default())
    }

    /// Opens a **durable** streaming session persisted in `dir`: a
    /// [`CheckpointedMiner`] that journals every pushed batch, folds the
    /// journal into full checkpoints per [`CheckpointPolicy`], and can
    /// be rebuilt after a crash with
    /// [`CheckpointedMiner::recover`]. When `dir` already holds a
    /// checkpoint the persisted session is recovered instead — `db` is
    /// ignored and the returned report says what was restored.
    ///
    /// [`CheckpointedMiner`]: crate::checkpoint::CheckpointedMiner
    /// [`CheckpointedMiner::recover`]: crate::checkpoint::CheckpointedMiner::recover
    /// [`CheckpointPolicy`]: crate::checkpoint::CheckpointPolicy
    pub fn checkpointing(
        &self,
        db: TransactionDb,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<
        (
            crate::checkpoint::CheckpointedMiner,
            Option<crate::checkpoint::RecoveryReport>,
        ),
        crate::checkpoint::RecoveryError,
    > {
        crate::checkpoint::CheckpointedMiner::open(self, db, dir)
    }

    // Configuration accessors for the fused pipeline (same crate).
    pub(crate) fn min_support_config(&self) -> MinSupport {
        self.min_support
    }

    pub(crate) fn engine_config(&self) -> EngineKind {
        self.engine.clone()
    }

    pub(crate) fn min_confidence_config(&self) -> f64 {
        self.min_confidence
    }

    pub(crate) fn algorithm_config(&self) -> ClosedAlgorithm {
        self.algorithm
    }

    pub(crate) fn include_empty_antecedent_config(&self) -> bool {
        self.include_empty_antecedent
    }

    pub(crate) fn parallelism_config(&self) -> Parallelism {
        self.parallelism
    }

    /// Runs the pipeline on a database, through the configured engine
    /// backend under the configured thread policy (so
    /// `.parallelism(Parallelism::Off)` makes the whole run sequential,
    /// sharded engine included).
    pub fn mine(&self, db: TransactionDb) -> MinedBases {
        self.mine_context(&MiningContext::with_engine_par(
            db,
            self.engine.clone(),
            self.parallelism,
        ))
    }

    /// Runs the pipeline on an existing context (keeping that context's
    /// engine).
    pub fn mine_context(&self, ctx: &MiningContext) -> MinedBases {
        if self.pipeline == PipelineKind::Fused {
            return fused::mine_bases(self, ctx);
        }
        let frequent = Apriori::new()
            .parallelism(self.parallelism)
            .mine(ctx, self.min_support);
        let closed =
            self.algorithm
                .mine_engine_par(ctx.engine(), self.min_support, self.parallelism);
        // Pairwise Hasse construction wins at every measured scale (E7
        // ablation): closure-based covers pay |FC|·|I| closure scans.
        let lattice = IcebergLattice::from_closed(&closed);
        let dg = DuquenneGuiguesBasis::build(&frequent, &closed, ctx.n_items());
        let lux_full =
            LuxenburgerBasis::full(&closed, self.min_confidence, self.include_empty_antecedent);
        let lux_reduced = LuxenburgerBasis::reduced(
            &lattice,
            self.min_confidence,
            // Derivation paths may start at the bottom, so the reduced
            // basis always keeps bottom edges internally; reporting
            // filters them.
            true,
        );
        MinedBases {
            min_count: frequent.min_count,
            n_objects: ctx.n_objects(),
            min_support: self.min_support,
            min_confidence: self.min_confidence,
            include_empty_antecedent: self.include_empty_antecedent,
            pipeline: PipelineKind::Staged,
            frequent,
            closed,
            lattice,
            minimal_generators: None,
            dg,
            lux_full,
            lux_reduced,
        }
    }
}

/// Everything one bases-mining run produces.
#[derive(Debug)]
pub struct MinedBases {
    /// Absolute support threshold used.
    pub min_count: Support,
    /// Number of objects in the context.
    pub n_objects: usize,
    /// The configured support threshold.
    pub min_support: MinSupport,
    /// The configured confidence threshold.
    pub min_confidence: f64,
    /// Whether empty-antecedent rules are reported.
    pub include_empty_antecedent: bool,
    /// Which pipeline produced this bundle.
    pub pipeline: PipelineKind,
    /// All frequent itemsets (mined by Apriori on the staged path,
    /// derived from `FC` on the fused path — identical either way).
    pub frequent: FrequentItemsets,
    /// The frequent closed itemsets `FC`.
    pub closed: ClosedItemsets,
    /// The iceberg lattice over `FC`.
    pub lattice: IcebergLattice,
    /// Minimal-generator tags per lattice node (aligned with
    /// [`IcebergLattice`] node order), collected on the fly by the fused
    /// pipeline's levelwise traversals; `None` on the staged path, and
    /// empty per node under CHARM (its IT-tree carries no generators).
    pub minimal_generators: Option<Vec<Vec<Itemset>>>,
    /// The Duquenne-Guigues basis.
    pub dg: DuquenneGuiguesBasis,
    /// The full Luxenburger basis at `min_confidence`.
    pub lux_full: LuxenburgerBasis,
    /// The reduced Luxenburger basis (Hasse edges, bottom included).
    pub lux_reduced: LuxenburgerBasis,
}

impl MinedBases {
    /// The reduced Luxenburger rules as reported (bottom edges filtered
    /// out unless `include_empty_antecedent`).
    pub fn luxenburger_reduced_rules(&self) -> Vec<&Rule> {
        self.lux_reduced
            .iter()
            .filter(|r| self.include_empty_antecedent || !r.antecedent.is_empty())
            .collect()
    }

    /// Enumerates all exact rules directly from `F` and `FC`.
    pub fn exact_rules(&self) -> Vec<Rule> {
        all_exact_rules(&self.frequent, &self.closed)
    }

    /// Reconstructs all exact rules from the DG basis (must equal
    /// [`MinedBases::exact_rules`]).
    pub fn derive_exact_rules(&self) -> Vec<Rule> {
        derive_exact_rules(&self.dg, &self.frequent)
    }

    /// Enumerates all approximate rules at the configured confidence.
    pub fn approximate_rules(&self) -> Vec<Rule> {
        all_approximate_rules(&self.frequent, self.min_confidence)
    }

    /// Reconstructs all approximate rules from the bases (must equal
    /// [`MinedBases::approximate_rules`]).
    pub fn derive_approximate_rules(&self) -> Vec<Rule> {
        let engine = ApproxDerivation::new(&self.lux_reduced, &self.dg);
        derive_approximate_rules(&engine, &self.frequent, self.min_confidence)
    }

    /// Enumerates the full redundant rule set (exact + approximate) at the
    /// configured confidence — the baseline the bases are compared to.
    pub fn all_valid_rules(&self) -> Vec<Rule> {
        all_rules(&self.frequent, self.min_confidence)
    }

    /// Number of closed sets excluding an empty bottom (the `|FC|` the
    /// paper tables report).
    pub fn n_closed_nonempty(&self) -> usize {
        self.closed.iter().filter(|(s, _)| !s.is_empty()).count()
    }

    /// Builds the experiment-table row for this run.
    pub fn report(&self, dataset: &str) -> BasisReport {
        let n_exact = count_exact_rules(&self.frequent, &self.closed);
        let n_all = count_all_rules(&self.frequent, self.min_confidence);
        // Exact rules always pass the confidence filter.
        let n_exact_in_all = count_exact_rules(&self.frequent, &self.closed) as usize;
        let min_support = match self.min_support {
            MinSupport::Fraction(f) => f,
            MinSupport::Count(c) => c as f64 / self.n_objects.max(1) as f64,
        };
        BasisReport {
            dataset: dataset.to_owned(),
            min_support,
            min_confidence: self.min_confidence,
            n_frequent: self.frequent.len(),
            n_closed: self.n_closed_nonempty(),
            n_pseudo_closed: self.dg.len(),
            n_exact_rules: n_exact,
            dg_size: self.dg.len(),
            n_approx_rules: n_all - n_exact_in_all,
            lux_full_size: self.lux_full.len(),
            lux_reduced_size: self.luxenburger_reduced_rules().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;

    #[test]
    fn full_pipeline_on_paper_example() {
        let bases = RuleMiner::new(MinSupport::Fraction(0.4))
            .min_confidence(0.5)
            .mine(paper_example());
        assert_eq!(bases.min_count, 2);
        assert_eq!(bases.frequent.len(), 15);
        assert_eq!(bases.n_closed_nonempty(), 5);
        assert_eq!(bases.dg.len(), 3);

        // Derivation round-trips.
        assert_eq!(bases.exact_rules(), bases.derive_exact_rules());
        assert_eq!(bases.approximate_rules(), bases.derive_approximate_rules());

        // Baseline vs bases sizes.
        let report = bases.report("paper");
        assert_eq!(report.n_exact_rules, 14);
        assert_eq!(report.dg_size, 3);
        assert_eq!(report.n_approx_rules + report.n_exact_rules as usize, 50);
        assert!(report.lux_reduced_size <= report.lux_full_size);
        assert!(report.exact_reduction().unwrap() > 4.0); // 14/3
    }

    #[test]
    fn all_algorithms_give_identical_bases() {
        let reference = RuleMiner::new(MinSupport::Count(2)).mine(paper_example());
        for algo in ClosedAlgorithm::ALL {
            let bases = RuleMiner::new(MinSupport::Count(2))
                .algorithm(algo)
                .mine(paper_example());
            assert_eq!(
                bases.closed.clone().into_sorted_vec(),
                reference.closed.clone().into_sorted_vec(),
                "{algo}"
            );
            assert_eq!(bases.dg.rules(), reference.dg.rules(), "{algo}");
        }
    }

    #[test]
    fn empty_antecedent_configuration() {
        let with = RuleMiner::new(MinSupport::Count(2))
            .min_confidence(0.0)
            .include_empty_antecedent(true)
            .mine(paper_example());
        let without = RuleMiner::new(MinSupport::Count(2))
            .min_confidence(0.0)
            .mine(paper_example());
        assert!(with.lux_full.len() > without.lux_full.len());
        assert!(with
            .luxenburger_reduced_rules()
            .iter()
            .any(|r| r.antecedent.is_empty()));
        assert!(without
            .luxenburger_reduced_rules()
            .iter()
            .all(|r| !r.antecedent.is_empty()));
    }

    #[test]
    fn empty_database() {
        let bases = RuleMiner::new(MinSupport::Fraction(0.5))
            .mine(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert_eq!(bases.frequent.len(), 0);
        assert!(bases.dg.is_empty());
        assert!(bases.exact_rules().is_empty());
        assert!(bases.approximate_rules().is_empty());
    }

    #[test]
    #[should_panic(expected = "minconf outside")]
    fn invalid_confidence_rejected() {
        let _ = RuleMiner::new(MinSupport::Count(1)).min_confidence(2.0);
    }

    #[test]
    fn sharded_engine_and_forced_threads_yield_identical_bases() {
        use rulebases_dataset::{EngineKind, Parallelism};
        let reference = RuleMiner::new(MinSupport::Count(2)).mine(paper_example());
        for algo in ClosedAlgorithm::ALL {
            let bases = RuleMiner::new(MinSupport::Count(2))
                .algorithm(algo)
                .engine(EngineKind::Sharded {
                    shards: 3,
                    inner: Box::new(EngineKind::Auto),
                })
                .parallelism(Parallelism::Fixed(3))
                .mine(paper_example());
            assert_eq!(
                bases.closed.clone().into_sorted_vec(),
                reference.closed.clone().into_sorted_vec(),
                "{algo}"
            );
            assert_eq!(bases.dg.rules(), reference.dg.rules(), "{algo}");
            assert_eq!(bases.frequent.len(), reference.frequent.len(), "{algo}");
            assert_eq!(
                bases.luxenburger_reduced_rules().len(),
                reference.luxenburger_reduced_rules().len(),
                "{algo}"
            );
            // Derivations still round-trip over the sharded backend.
            assert_eq!(bases.exact_rules(), bases.derive_exact_rules(), "{algo}");
        }
    }
}
