//! Approximate association rules and the **Luxenburger basis**
//! (Theorem 2).
//!
//! An approximate rule has confidence strictly below 1. Luxenburger (1991)
//! showed that the rules *between comparable closed sets* generate all
//! partial implications; the paper adapts this to frequent closed
//! itemsets: the basis holds one rule `C1 → C2 ∖ C1` per pair
//! `C1 ⊂ C2 ∈ FC`, and its **transitive reduction** — only the pairs with
//! no closed set strictly between them, i.e. the Hasse edges of the
//! iceberg lattice — is still a basis: any rule's confidence is the
//! product of edge confidences along a lattice path (the ratios
//! telescope), and its support is carried by the last edge.
//!
//! A `min_confidence` threshold commutes with the reduction: every edge on
//! a path multiplies to the rule's confidence, so each edge confidence is
//! ≥ the rule confidence — a valid rule never needs a sub-threshold edge
//! (see `threshold_commutes_with_reduction` below).

use crate::rule::Rule;
use rulebases_dataset::Itemset;
use rulebases_lattice::IcebergLattice;
use rulebases_mining::{ClosedItemsets, FrequentItemsets};

/// Enumerates **all** approximate rules at `min_confidence`: every pair
/// `X ⊂ Y` of frequent itemsets with `conf = supp(Y)/supp(X) < 1` and
/// `≥ min_confidence`, as the rule `X → Y ∖ X`. Canonical order.
pub fn all_approximate_rules(frequent: &FrequentItemsets, min_confidence: f64) -> Vec<Rule> {
    let mut rules = crate::all_rules::all_rules(frequent, min_confidence);
    rules.retain(|r| !r.is_exact());
    rules
}

/// A Luxenburger basis — full or transitively reduced.
#[derive(Clone, Debug)]
pub struct LuxenburgerBasis {
    rules: Vec<Rule>,
    /// The confidence threshold the basis was built with.
    pub min_confidence: f64,
    /// Whether this is the transitive reduction (Hasse edges only).
    pub reduced: bool,
}

impl LuxenburgerBasis {
    /// Builds the **full** basis: one rule per comparable pair of frequent
    /// closed itemsets with confidence ≥ `min_confidence`.
    ///
    /// Rules whose antecedent would be the empty itemset (pairs starting
    /// at an empty lattice bottom) are skipped unless
    /// `include_empty_antecedent` — they are "frequency statements"
    /// `∅ → C`, not association rules in the usual sense.
    pub fn full(fc: &ClosedItemsets, min_confidence: f64, include_empty_antecedent: bool) -> Self {
        assert!((0.0..=1.0).contains(&min_confidence));
        let sets: Vec<(&Itemset, u64)> = fc.iter().collect();
        let mut rules = Vec::new();
        for (i, (c1, s1)) in sets.iter().enumerate() {
            if c1.is_empty() && !include_empty_antecedent {
                continue;
            }
            for (c2, s2) in sets.iter().skip(i + 1) {
                if !c1.is_proper_subset_of(c2) {
                    continue;
                }
                // Distinct closed sets have distinct extents: s2 < s1, so
                // the confidence is automatically < 1.
                debug_assert!(s2 < s1);
                if (*s2 as f64) < min_confidence * *s1 as f64 {
                    continue;
                }
                rules.push(Rule::new((*c1).clone(), c2.difference(c1), *s2, *s1));
            }
        }
        rules.sort();
        LuxenburgerBasis {
            rules,
            min_confidence,
            reduced: false,
        }
    }

    /// Builds the **full** basis from an already-constructed iceberg
    /// lattice: reachability along Hasse edges *is* the strict subset
    /// order over `FC`, so walking the transitive closure enumerates
    /// exactly the comparable pairs [`LuxenburgerBasis::full`] finds by
    /// pairwise subset tests — without re-deriving the order the lattice
    /// already holds. This is the fused pipeline's path to the full
    /// basis.
    pub fn full_from_lattice(
        lattice: &IcebergLattice,
        min_confidence: f64,
        include_empty_antecedent: bool,
    ) -> Self {
        assert!((0.0..=1.0).contains(&min_confidence));
        let mut rules = Vec::new();
        for (i, j) in lattice.comparable_pairs() {
            let (c1, s1) = lattice.node(i);
            let (c2, s2) = lattice.node(j);
            if c1.is_empty() && !include_empty_antecedent {
                continue;
            }
            debug_assert!(s2 < s1);
            if (s2 as f64) < min_confidence * s1 as f64 {
                continue;
            }
            rules.push(Rule::new(c1.clone(), c2.difference(c1), s2, s1));
        }
        rules.sort();
        LuxenburgerBasis {
            rules,
            min_confidence,
            reduced: false,
        }
    }

    /// Builds the **transitive reduction**: one rule per Hasse edge of the
    /// iceberg lattice with confidence ≥ `min_confidence`.
    pub fn reduced(
        lattice: &IcebergLattice,
        min_confidence: f64,
        include_empty_antecedent: bool,
    ) -> Self {
        assert!((0.0..=1.0).contains(&min_confidence));
        let mut rules = Vec::new();
        for (i, j) in lattice.edges() {
            let (c1, s1) = lattice.node(i);
            let (c2, s2) = lattice.node(j);
            if c1.is_empty() && !include_empty_antecedent {
                continue;
            }
            if (s2 as f64) < min_confidence * s1 as f64 {
                continue;
            }
            rules.push(Rule::new(c1.clone(), c2.difference(c1), s2, s1));
        }
        rules.sort();
        LuxenburgerBasis {
            rules,
            min_confidence,
            reduced: true,
        }
    }

    /// Wraps an already-derived rule list (canonical order) as a basis —
    /// the constructor the streaming maintenance uses, where the rules
    /// come from an incrementally patched map rather than a lattice walk.
    pub(crate) fn from_sorted_rules(rules: Vec<Rule>, min_confidence: f64, reduced: bool) -> Self {
        debug_assert!(rules.windows(2).all(|w| w[0] <= w[1]), "rules not sorted");
        LuxenburgerBasis {
            rules,
            min_confidence,
            reduced,
        }
    }

    /// Number of basis rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The basis rules in canonical order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::{paper_example, MinSupport, MiningContext};
    use rulebases_mining::brute::{brute_closed, brute_frequent};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn setup() -> (
        MiningContext,
        FrequentItemsets,
        ClosedItemsets,
        IcebergLattice,
    ) {
        let ctx = MiningContext::new(paper_example());
        let f = brute_frequent(&ctx, MinSupport::Count(2));
        let fc = brute_closed(&ctx, MinSupport::Count(2));
        let lattice = IcebergLattice::from_closed(&fc);
        (ctx, f, fc, lattice)
    }

    #[test]
    fn full_basis_of_paper_example() {
        let (_, _, fc, _) = setup();
        let basis = LuxenburgerBasis::full(&fc, 0.0, false);
        // Comparable pairs not starting at ∅: C⊂AC, C⊂BCE, C⊂ABCE,
        // AC⊂ABCE, BE⊂BCE, BE⊂ABCE, BCE⊂ABCE — 7 rules.
        assert_eq!(basis.len(), 7);
        assert!(basis.iter().all(|r| !r.is_exact()));
        // C → A with conf 3/4.
        assert!(basis
            .rules()
            .contains(&Rule::new(set(&[3]), set(&[1]), 3, 4)));
        // BE → C with conf 3/4.
        assert!(basis
            .rules()
            .contains(&Rule::new(set(&[2, 5]), set(&[3]), 3, 4)));
    }

    #[test]
    fn reduced_basis_is_the_hasse_diagram() {
        let (_, _, _fc, lattice) = setup();
        let reduced = LuxenburgerBasis::reduced(&lattice, 0.0, false);
        // 7 Hasse edges minus the 2 out of the empty bottom = 5 rules.
        assert_eq!(reduced.len(), 5);
        assert!(reduced.reduced);
        // The transitive rule C → ABE (C ⊂ ABCE) is NOT in the reduction.
        assert!(!reduced
            .rules()
            .iter()
            .any(|r| r.antecedent == set(&[3]) && r.consequent == set(&[1, 2, 5])));
        // But its generating edges are.
        assert!(reduced
            .rules()
            .contains(&Rule::new(set(&[3]), set(&[1]), 3, 4)));
        assert!(reduced
            .rules()
            .contains(&Rule::new(set(&[1, 3]), set(&[2, 5]), 2, 3)));
    }

    #[test]
    fn full_from_lattice_matches_pairwise_full() {
        let (_, _, fc, lattice) = setup();
        for conf in [0.0, 0.4, 0.7, 1.0] {
            for include_empty in [false, true] {
                let by_pairs = LuxenburgerBasis::full(&fc, conf, include_empty);
                let by_lattice = LuxenburgerBasis::full_from_lattice(&lattice, conf, include_empty);
                assert_eq!(
                    by_pairs.rules(),
                    by_lattice.rules(),
                    "conf={conf} include_empty={include_empty}"
                );
                assert!(!by_lattice.reduced);
            }
        }
    }

    #[test]
    fn reduced_is_subset_of_full() {
        let (_, _, fc, lattice) = setup();
        for conf in [0.0, 0.4, 0.6, 0.8] {
            let full = LuxenburgerBasis::full(&fc, conf, false);
            let reduced = LuxenburgerBasis::reduced(&lattice, conf, false);
            for rule in reduced.rules() {
                assert!(full.rules().contains(rule), "{rule} missing from full");
            }
            assert!(reduced.len() <= full.len());
        }
    }

    #[test]
    fn confidence_threshold_filters() {
        let (_, _, fc, _) = setup();
        let at_0 = LuxenburgerBasis::full(&fc, 0.0, false);
        let at_07 = LuxenburgerBasis::full(&fc, 0.7, false);
        let at_1 = LuxenburgerBasis::full(&fc, 1.0, false);
        assert!(at_07.len() < at_0.len());
        assert!(at_1.is_empty()); // closed-set pairs are never exact
        for r in at_07.rules() {
            assert!(r.confidence() >= 0.7);
        }
    }

    #[test]
    fn threshold_commutes_with_reduction() {
        // Every full-basis rule at minconf must be reconstructible from
        // reduced-basis edges at the same minconf: each edge along the
        // lattice path has confidence ≥ the rule's.
        let (_, _, fc, lattice) = setup();
        let minconf = 0.5;
        let full = LuxenburgerBasis::full(&fc, minconf, false);
        for rule in full.rules() {
            let from = lattice.position(&rule.antecedent).unwrap();
            let to = lattice.position(&rule.full_itemset()).unwrap();
            let path = lattice.path(from, to).unwrap();
            for hop in path.windows(2) {
                let (_, s_lo) = lattice.node(hop[0]);
                let (_, s_hi) = lattice.node(hop[1]);
                let edge_conf = s_hi as f64 / s_lo as f64;
                assert!(
                    edge_conf >= rule.confidence() - 1e-12,
                    "edge conf {edge_conf} below rule conf {} for {rule}",
                    rule.confidence()
                );
            }
        }
    }

    #[test]
    fn empty_antecedent_toggle() {
        let (_, _, fc, _) = setup();
        let without = LuxenburgerBasis::full(&fc, 0.0, false);
        let with = LuxenburgerBasis::full(&fc, 0.0, true);
        // The empty bottom ∅ is below all 5 other closed sets.
        assert_eq!(with.len(), without.len() + 5);
        assert!(with.rules().iter().any(|r| r.antecedent.is_empty()));
        assert!(without.rules().iter().all(|r| !r.antecedent.is_empty()));
    }

    #[test]
    fn all_approximate_rules_excludes_exact() {
        let (ctx, f, _, _) = setup();
        let rules = all_approximate_rules(&f, 0.3);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(!r.is_exact());
            assert!(r.confidence() >= 0.3);
            assert_eq!(ctx.support(&r.full_itemset()), r.support);
        }
    }

    #[test]
    fn basis_far_smaller_than_all_approximate() {
        let (_, f, fc, lattice) = setup();
        let all = all_approximate_rules(&f, 0.0);
        let full = LuxenburgerBasis::full(&fc, 0.0, false);
        let reduced = LuxenburgerBasis::reduced(&lattice, 0.0, false);
        assert!(reduced.len() <= full.len());
        assert!(full.len() < all.len(), "{} !< {}", full.len(), all.len());
    }
}
