//! Rule redundancy and minimal covers.
//!
//! The paper's motivation is that standard mining output is *redundant*:
//! many rules are consequences of others, with the same or worse
//! support/confidence. This module makes that notion first-class for
//! arbitrary rule lists:
//!
//! * a rule `r` is **covered** by a rule `s` (Aggarwal/Yu-style
//!   *simple redundancy*) when `s` has an antecedent ⊆ `r`'s, a
//!   consequent ⊇ `r`'s, the same support and the same confidence —
//!   everything `r` says is already said, more strongly, by `s`;
//! * [`minimal_cover`] prunes a rule list to the rules not covered by any
//!   other (the min-max / most-informative representatives);
//! * [`find_redundant`] reports which rules would be pruned and why.
//!
//! The generic/informative bases of [`mod@crate::generic_basis`] produce
//! exactly such covers by construction; these functions verify that and
//! let users post-process *any* rule list the same way.

use crate::rule::Rule;

/// Whether `stronger` covers `weaker`: same exact counts, smaller or
/// equal antecedent, larger or equal consequent-span, and not the same
/// rule.
///
/// With equal supports and confidences, the covering rule conveys
/// strictly more: it fires in at least as many situations (`⊆`
/// antecedent) and predicts at least as much (`⊇` spanned consequent).
pub fn covers(stronger: &Rule, weaker: &Rule) -> bool {
    if stronger == weaker {
        return false;
    }
    stronger.support == weaker.support
        && stronger.antecedent_support == weaker.antecedent_support
        && stronger.antecedent.is_subset_of(&weaker.antecedent)
        && weaker.full_itemset().is_subset_of(&stronger.full_itemset())
}

/// A redundancy finding: rule at `redundant` is covered by rule at
/// `covered_by` (indices into the input list).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Redundancy {
    /// Index of the redundant rule.
    pub redundant: usize,
    /// Index of a rule that covers it.
    pub covered_by: usize,
}

/// Finds every redundant rule in `rules` with one witness each.
pub fn find_redundant(rules: &[Rule]) -> Vec<Redundancy> {
    let mut findings = Vec::new();
    for (i, weaker) in rules.iter().enumerate() {
        if let Some(j) = rules.iter().position(|stronger| covers(stronger, weaker)) {
            // Tie-break identical-information pairs (mutual coverage) by
            // keeping the earlier rule: only report i if its witness is
            // not itself covered by i with a smaller index.
            if covers(weaker, &rules[j]) && i < j {
                continue;
            }
            findings.push(Redundancy {
                redundant: i,
                covered_by: j,
            });
        }
    }
    findings
}

/// Prunes `rules` to a minimal cover: every removed rule is covered by a
/// kept one, and no kept rule covers another kept rule.
pub fn minimal_cover(rules: &[Rule]) -> Vec<Rule> {
    let redundant: Vec<usize> = find_redundant(rules)
        .into_iter()
        .map(|r| r.redundant)
        .collect();
    rules
        .iter()
        .enumerate()
        .filter(|(i, _)| !redundant.contains(i))
        .map(|(_, r)| r.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::{paper_example, Itemset, MinSupport};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn rule(ant: &[u32], cons: &[u32], supp: u64, ant_supp: u64) -> Rule {
        Rule::new(set(ant), set(cons), supp, ant_supp)
    }

    #[test]
    fn smaller_antecedent_covers() {
        // In the paper example supp(B)=4 but supp(BC)=3: B → CE and
        // BC → E have different antecedent supports (and confidences), so
        // neither covers the other.
        let strong = rule(&[2], &[3, 5], 3, 4);
        let weak = rule(&[2, 3], &[5], 3, 3);
        assert!(!covers(&strong, &weak));

        // With genuinely equal counts, coverage holds.
        let strong = rule(&[1], &[2, 3], 2, 2);
        let weak = rule(&[1, 2], &[3], 2, 2);
        assert!(covers(&strong, &weak));
        assert!(!covers(&weak, &strong));
    }

    #[test]
    fn coverage_requires_equal_counts() {
        let a = rule(&[1], &[2], 3, 4);
        let b = rule(&[1], &[2, 3], 2, 4);
        assert!(!covers(&a, &b));
        assert!(!covers(&b, &a));
    }

    #[test]
    fn rule_never_covers_itself() {
        let r = rule(&[1], &[2], 2, 3);
        assert!(!covers(&r, &r));
    }

    #[test]
    fn minimal_cover_prunes_and_is_stable() {
        let rules = vec![
            rule(&[1], &[2, 3], 2, 2), // covers the next two
            rule(&[1, 2], &[3], 2, 2),
            rule(&[1, 3], &[2], 2, 2),
            rule(&[5], &[6], 4, 5), // unrelated, kept
        ];
        let cover = minimal_cover(&rules);
        assert_eq!(cover, vec![rules[0].clone(), rules[3].clone()]);
        // Idempotent.
        assert_eq!(minimal_cover(&cover), cover);
    }

    #[test]
    fn mutual_coverage_keeps_exactly_one() {
        // Two rules with identical information (same antecedent, same
        // spanned itemset): keep the first.
        let a = rule(&[1], &[2, 3], 2, 2);
        let b = rule(&[1], &[3, 2], 2, 2); // identical after sorting
        assert_eq!(a, b);
        let cover = minimal_cover(&[a.clone(), b]);
        assert_eq!(cover.len(), 2); // equal rules do not cover each other
                                    // Distinct-but-mutually-covering pairs cannot exist with the
                                    // subset conditions (antecedents would have to be equal and spans
                                    // equal ⇒ same rule), so nothing else to prune.
        let _ = cover;
    }

    #[test]
    fn exact_rules_of_paper_example_reduce_to_generic_basis_size() {
        // The minimal cover of ALL exact rules has exactly one rule per
        // (generator, closure) pair with minimal antecedent and full
        // consequent — the generic basis.
        use rulebases_mining::brute::{brute_closed, brute_frequent};
        use rulebases_mining::mine_generators;

        let ctx = rulebases_dataset::MiningContext::new(paper_example());
        let frequent = brute_frequent(&ctx, MinSupport::Count(2));
        let fc = brute_closed(&ctx, MinSupport::Count(2));
        let all_exact = crate::exact::all_exact_rules(&frequent, &fc);
        let cover = minimal_cover(&all_exact);

        let generators = mine_generators(&ctx, 2);
        let generic = crate::generic_basis::generic_basis(&generators, &fc);
        // Every generic-basis rule (with a non-empty antecedent) survives
        // in the cover.
        for g in generic.iter().filter(|r| !r.antecedent.is_empty()) {
            assert!(cover.contains(g), "{g} missing from minimal cover");
        }
        // And the cover is much smaller than the full exact set.
        assert!(cover.len() < all_exact.len());
    }

    #[test]
    fn findings_reference_valid_witnesses() {
        let rules = vec![rule(&[1], &[2, 3], 2, 2), rule(&[1, 2], &[3], 2, 2)];
        let findings = find_redundant(&rules);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].redundant, 1);
        assert_eq!(findings[0].covered_by, 0);
        assert!(covers(&rules[0], &rules[1]));
    }

    #[test]
    fn empty_input() {
        assert!(find_redundant(&[]).is_empty());
        assert!(minimal_cover(&[]).is_empty());
    }
}
