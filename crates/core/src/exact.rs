//! Exact association rules and the **Duquenne-Guigues basis** (Theorem 1).
//!
//! An exact rule `X → Z` has confidence 1: every object containing `X`
//! contains `Z`, equivalently `Z ⊆ h(X)`. The set of all exact rules is
//! hugely redundant; the paper adapts the Duquenne-Guigues basis
//! (Guigues & Duquenne 1986) to the frequent case: one rule
//! `P → h(P) ∖ P` per frequent **pseudo-closed** itemset `P`. This basis
//! is sound, complete (every exact rule follows by Armstrong derivation),
//! and of minimum cardinality among all complete rule sets.

use crate::rule::Rule;
use rulebases_dataset::Itemset;
use rulebases_lattice::{frequent_pseudo_closed, Implication, ImplicationSet, PseudoClosed};
use rulebases_mining::{ClosedItemsets, FrequentItemsets};

/// Enumerates **all** exact rules with non-empty antecedents: for every
/// frequent itemset `X` and every non-empty `S ⊆ h(X) ∖ X`, the rule
/// `X → S` (each exact rule arises from exactly one `X`, so there are no
/// duplicates). Returns rules in canonical order.
pub fn all_exact_rules(frequent: &FrequentItemsets, fc: &ClosedItemsets) -> Vec<Rule> {
    let mut rules = Vec::new();
    for (x, support) in frequent.iter() {
        let Some((closure, _)) = fc.closure_of(x) else {
            debug_assert!(false, "frequent itemset {x:?} lacks a closure");
            continue;
        };
        let extra = closure.difference(x);
        if extra.is_empty() {
            continue;
        }
        assert!(
            extra.len() < 64,
            "closure difference too large to enumerate"
        );
        let items: Vec<_> = extra.iter().collect();
        for mask in 1u64..(1 << items.len()) {
            let consequent = Itemset::from_items(
                items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &it)| it),
            );
            rules.push(Rule::new(x.clone(), consequent, support, support));
        }
    }
    rules.sort();
    rules
}

/// Counts all exact rules without materializing them:
/// `Σ_X (2^{|h(X)∖X|} − 1)` over the frequent itemsets.
pub fn count_exact_rules(frequent: &FrequentItemsets, fc: &ClosedItemsets) -> u64 {
    let mut count = 0u64;
    for (x, _) in frequent.iter() {
        if let Some((closure, _)) = fc.closure_of(x) {
            let extra = closure.len() - x.len();
            debug_assert!(extra < 64);
            count += (1u64 << extra) - 1;
        }
    }
    count
}

/// The Duquenne-Guigues basis for exact association rules.
#[derive(Clone, Debug)]
pub struct DuquenneGuiguesBasis {
    rules: Vec<Rule>,
    implications: ImplicationSet,
    pseudo_closed: Vec<PseudoClosed>,
}

impl DuquenneGuiguesBasis {
    /// Builds the basis from the frequent itemsets and the frequent closed
    /// itemsets of the same context at the same threshold: one rule
    /// `P → h(P) ∖ P` per frequent pseudo-closed `P`.
    pub fn build(frequent: &FrequentItemsets, fc: &ClosedItemsets, n_items: usize) -> Self {
        Self::from_pseudo_closed(frequent_pseudo_closed(frequent, fc), n_items)
    }

    /// Builds the basis from an already-computed list of frequent
    /// pseudo-closed itemsets (canonical order) — the constructor the
    /// streaming maintenance uses, where `FP` comes straight off the
    /// maintained lattice family
    /// ([`pseudo_closed_of_family`](rulebases_lattice::pseudo_closed_of_family))
    /// instead of a frequent-itemset walk.
    pub fn from_pseudo_closed(pseudo_closed: Vec<PseudoClosed>, n_items: usize) -> Self {
        let mut rules = Vec::with_capacity(pseudo_closed.len());
        let mut implications = ImplicationSet::new(n_items);
        for p in &pseudo_closed {
            rules.push(Rule::new(
                p.set.clone(),
                p.closure.difference(&p.set),
                p.support,
                p.support,
            ));
            implications.push(Implication::new(p.set.clone(), p.closure.clone()));
        }
        DuquenneGuiguesBasis {
            rules,
            implications,
            pseudo_closed,
        }
    }

    /// Number of basis rules (= `|FP|`).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the basis is empty (no exact rule holds).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The basis rules, ordered by pseudo-closed antecedent.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The basis as an implication set (for Armstrong derivation).
    pub fn implications(&self) -> &ImplicationSet {
        &self.implications
    }

    /// The frequent pseudo-closed itemsets the basis is built from.
    pub fn pseudo_closed(&self) -> &[PseudoClosed] {
        &self.pseudo_closed
    }

    /// The closure of `x` under the basis implications. For frequent `x`
    /// this equals the Galois closure `h(x)` — that equality *is* the
    /// completeness of the basis.
    pub fn derived_closure(&self, x: &Itemset) -> Itemset {
        self.implications.logical_closure(x)
    }

    /// Whether the exact rule `antecedent → consequent` is derivable from
    /// the basis.
    pub fn derives(&self, antecedent: &Itemset, consequent: &Itemset) -> bool {
        consequent.is_subset_of(&self.derived_closure(antecedent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::{paper_example, MinSupport, MiningContext};
    use rulebases_mining::brute::{brute_closed, brute_frequent};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn setup(min_count: u64) -> (MiningContext, FrequentItemsets, ClosedItemsets) {
        let ctx = MiningContext::new(paper_example());
        let f = brute_frequent(&ctx, MinSupport::Count(min_count));
        let fc = brute_closed(&ctx, MinSupport::Count(min_count));
        (ctx, f, fc)
    }

    #[test]
    fn paper_example_dg_basis() {
        let (_, f, fc) = setup(2);
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 6);
        // The published basis: A → C, B → E, E → B.
        assert_eq!(dg.len(), 3);
        assert_eq!(dg.rules()[0], Rule::new(set(&[1]), set(&[3]), 3, 3));
        assert_eq!(dg.rules()[1], Rule::new(set(&[2]), set(&[5]), 4, 4));
        assert_eq!(dg.rules()[2], Rule::new(set(&[5]), set(&[2]), 4, 4));
        assert!(dg.rules().iter().all(Rule::is_exact));
    }

    #[test]
    fn all_exact_rules_of_paper_example() {
        let (ctx, f, fc) = setup(2);
        let rules = all_exact_rules(&f, &fc);
        // Every rule is exact and holds in the context.
        for r in &rules {
            assert!(r.is_exact());
            assert_eq!(ctx.support(&r.full_itemset()), r.support);
            assert_eq!(ctx.support(&r.antecedent), r.support);
        }
        // No duplicates.
        let mut dedup = rules.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), rules.len());
        // Count formula agrees.
        assert_eq!(rules.len() as u64, count_exact_rules(&f, &fc));
    }

    #[test]
    fn exact_rule_enumeration_matches_all_rules_filter() {
        // all_exact_rules ≡ the exact subset of the Agrawal enumeration.
        let (_, f, fc) = setup(2);
        let via_closures = all_exact_rules(&f, &fc);
        let mut via_filter: Vec<Rule> = crate::all_rules::all_rules(&f, 1.0);
        via_filter.sort();
        assert_eq!(via_closures, via_filter);
    }

    #[test]
    fn basis_is_sound() {
        let (ctx, f, fc) = setup(2);
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 6);
        for rule in dg.rules() {
            // conf = 1 in the data.
            assert_eq!(
                ctx.support(&rule.antecedent),
                ctx.support(&rule.full_itemset()),
                "{rule}"
            );
        }
    }

    #[test]
    fn basis_is_complete() {
        let (_, f, fc) = setup(2);
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 6);
        for rule in all_exact_rules(&f, &fc) {
            assert!(
                dg.derives(&rule.antecedent, &rule.consequent),
                "{rule} not derivable"
            );
        }
        // And the derived closure equals the Galois closure on frequent
        // sets.
        for (x, _) in f.iter() {
            let (h, _) = fc.closure_of(x).unwrap();
            assert_eq!(&dg.derived_closure(x), h, "closure of {x:?}");
        }
    }

    #[test]
    fn basis_is_minimal() {
        // Removing any rule loses derivations.
        let (_, f, fc) = setup(2);
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 6);
        let full = dg.implications();
        for skip in 0..full.len() {
            let mut reduced = ImplicationSet::new(6);
            for (i, imp) in full.iter().enumerate() {
                if i != skip {
                    reduced.push(imp.clone());
                }
            }
            assert!(
                !reduced.entails_all(full),
                "rule #{skip} is redundant in the basis"
            );
        }
    }

    #[test]
    fn dg_much_smaller_than_all_exact_rules() {
        let (_, f, fc) = setup(1);
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 6);
        let all = count_exact_rules(&f, &fc);
        assert!((dg.len() as u64) < all, "basis {} !< all {all}", dg.len());
    }

    #[test]
    fn empty_basis_when_everything_is_closed() {
        // Pairwise-disjoint items: every frequent itemset is closed.
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![
            vec![0],
            vec![1],
            vec![2],
        ]));
        let f = brute_frequent(&ctx, MinSupport::Count(1));
        let fc = brute_closed(&ctx, MinSupport::Count(1));
        let dg = DuquenneGuiguesBasis::build(&f, &fc, 3);
        assert!(dg.is_empty());
        assert!(all_exact_rules(&f, &fc).is_empty());
    }
}
