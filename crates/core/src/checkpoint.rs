//! Crash-safe streaming sessions: checkpoint, journal, and recovery.
//!
//! The incremental stack keeps the bases live without re-mining — but
//! only in memory. This module makes a [`StreamingMiner`] session
//! *durable*: [`CheckpointedMiner`] wraps a session in an on-disk
//! directory holding periodic full checkpoints plus an append-only
//! journal of the batches pushed since the last one, and
//! [`CheckpointedMiner::recover`] rebuilds the exact pre-crash session
//! from the newest valid checkpoint + the journaled tail — with **zero**
//! support-engine calls during the restore (the engine is rebuilt over
//! the restored rows but never queried; journal batches replay through
//! the normal [`StreamingMiner::push_batch`] delta path and pay only
//! their usual delta cost, which is itself engine-call-free).
//!
//! # On-disk format
//!
//! A checkpoint directory holds at most two *generations* (the current
//! one and its predecessor, kept as the fallback):
//!
//! ```text
//! checkpoint-000007.ckpt   # full session snapshot, generation 7
//! journal-000007.log       # batches pushed since checkpoint 7
//! checkpoint-000006.ckpt   # previous generation (fallback)
//! journal-000006.log       # its tail — folded into checkpoint 7,
//!                          # kept so a corrupt checkpoint 7 can be
//!                          # reconstructed as checkpoint 6 + journal 6
//! ```
//!
//! **Checkpoint file** — one ASCII header line, then the payload:
//!
//! ```text
//! rulebases-ckpt v1 len=<payload bytes> fnv=<16-hex FNV-1a 64>\n
//! <payload: the session's serde wire form, rendered as JSON>
//! ```
//!
//! The header carries the format version, the exact payload length,
//! and the payload's [FNV-1a 64](rulebases_dataset::checksum) digest;
//! restore validates all three before a single byte is deserialized, so
//! a torn or bit-flipped checkpoint is rejected as a typed
//! [`RecoveryError`], never a panic and never a half-restored session.
//! Checkpoint writes go write-to-temp → flush-and-sync → atomic rename,
//! so the named file is either the complete old generation or the
//! complete new one.
//!
//! **Journal file** — one framed record per pushed batch:
//!
//! ```text
//! b1 <payload bytes> <16-hex FNV-1a 64> <payload: JSON rows>\n
//! ```
//!
//! Records are appended and flushed after the in-memory push succeeds;
//! the JSON renderer never emits a raw newline, so the `\n` terminator
//! frames records unambiguously. On replay, the first record that is
//! torn (no terminator), fails its checksum, or mis-states its length
//! ends the replay: everything before it is restored exactly, and the
//! [`RecoveryReport`] names the lost suffix (file and byte offset).
//!
//! # Recovery invariant
//!
//! For *any* crash point — including a truncation at every byte
//! boundary of the newest checkpoint or journal — recovery either
//! reproduces the exact pre-crash session (database, lattice incl.
//! tombstoned slot ids, generator tags, maintained bases, window
//! state), or reports the lost suffix in a typed, non-panicking way.
//! This is property-tested in `tests/recovery.rs` across engine
//! backends × batch schedules × window policies, with the fault
//! injection done by [`FaultFs`].

use crate::miner::{MinedBases, RuleMiner};
use crate::stream::{BasesDelta, SessionWire, StreamError, StreamingMiner, Window};
use rulebases_dataset::checksum::fnv1a64;
use rulebases_dataset::TransactionDb;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Checkpoint-file magic + version, the first tokens of the header line.
const MAGIC: &str = "rulebases-ckpt";
/// Current checkpoint format version.
const VERSION: u32 = 1;
/// Journal-record magic, the first token of every record.
const RECORD_MAGIC: &str = "b1";
/// A header longer than this is corrupt by definition (the real header
/// is well under 64 bytes); bounds the newline scan on garbage files.
const MAX_HEADER: usize = 128;

/// When a [`CheckpointedMiner`] folds its journal into a fresh
/// checkpoint: after every `every_batches` journaled batches, or once
/// the journal exceeds `every_journal_bytes` — whichever comes first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Fold after this many journaled batches (0 folds on every push).
    pub every_batches: usize,
    /// Fold once the journal holds at least this many bytes.
    pub every_journal_bytes: u64,
}

impl Default for CheckpointPolicy {
    /// Every 32 batches or 4 MiB of journal, whichever comes first.
    fn default() -> Self {
        CheckpointPolicy {
            every_batches: 32,
            every_journal_bytes: 4 << 20,
        }
    }
}

impl CheckpointPolicy {
    /// Whether a journal at `batches`/`bytes` is due for folding.
    fn due(&self, batches: usize, bytes: u64) -> bool {
        batches > self.every_batches.saturating_sub(1) || bytes >= self.every_journal_bytes
    }
}

/// Fault-injection plan for checkpoint writes, plus standalone file
/// mutators — the test harness behind the crash-safety properties. A
/// default plan injects nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultFs {
    truncate: Option<u64>,
    flip: Option<(u64, u8)>,
    drop_rename: bool,
}

impl FaultFs {
    /// A plan that injects no faults.
    pub fn new() -> Self {
        FaultFs::default()
    }

    /// Truncate the written bytes to `offset` (simulates a torn write).
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.truncate = Some(offset);
        self
    }

    /// Flip bit `bit` of byte `byte` (simulates media corruption).
    pub fn flip_bit(mut self, byte: u64, bit: u8) -> Self {
        self.flip = Some((byte, bit));
        self
    }

    /// Skip the final atomic rename: the temp file is left behind and
    /// the named checkpoint never appears (simulates a crash between
    /// flush and rename).
    pub fn drop_rename(mut self) -> Self {
        self.drop_rename = true;
        self
    }

    /// Whether this plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.truncate.is_none() && self.flip.is_none() && !self.drop_rename
    }

    /// Applies the byte-level faults to an in-memory buffer.
    fn corrupt(&self, bytes: &mut Vec<u8>) {
        if let Some((byte, bit)) = self.flip {
            let i = byte as usize;
            if i < bytes.len() {
                bytes[i] ^= 1 << (bit & 7);
            }
        }
        if let Some(at) = self.truncate {
            bytes.truncate(at as usize);
        }
    }

    /// Applies the byte-level faults (truncation, bit flip) to an
    /// existing file in place — the post-hoc form the byte-boundary
    /// sweep tests use on files written cleanly.
    pub fn apply_to(&self, path: &Path) -> io::Result<()> {
        let mut bytes = fs::read(path)?;
        self.corrupt(&mut bytes);
        fs::write(path, bytes)
    }
}

/// Why a checkpointed push or an explicit checkpoint failed. The
/// in-memory session is intact; on an I/O failure the just-pushed batch
/// may not have reached the journal (durability, not correctness, is
/// what was lost — the caller should retry the checkpoint or treat the
/// batch as unacknowledged).
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying [`StreamingMiner::push_batch`] rejected the batch.
    Stream(StreamError),
    /// A filesystem operation failed.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// The session state could not be rendered to its wire form.
    Encode(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Stream(e) => write!(f, "push rejected: {e}"),
            CheckpointError::Io { path, error } => {
                write!(f, "checkpoint i/o on {}: {error}", path.display())
            }
            CheckpointError::Encode(e) => write!(f, "checkpoint encoding: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Stream(e) => Some(e),
            CheckpointError::Io { error, .. } => Some(error),
            CheckpointError::Encode(_) => None,
        }
    }
}

impl From<StreamError> for CheckpointError {
    fn from(e: StreamError) -> Self {
        CheckpointError::Stream(e)
    }
}

/// Why recovery failed outright (no session could be rebuilt). Partial
/// loss — a valid checkpoint restored but a torn journal tail — is
/// *not* an error: it is a successful recovery whose
/// [`RecoveryReport::lost`] names the suffix.
#[derive(Debug)]
pub enum RecoveryError {
    /// The directory holds no checkpoint file at all, or every
    /// checkpoint present was rejected (each rejection listed).
    NoCheckpoint {
        /// The directory scanned.
        dir: PathBuf,
        /// Why each candidate checkpoint was rejected, newest first.
        rejected: Vec<String>,
    },
    /// A filesystem operation failed.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// The header line is missing, malformed, or carries trailing bytes
    /// beyond the declared payload.
    CorruptHeader {
        /// The offending checkpoint file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
    /// The checkpoint was written by an unknown format version.
    VersionMismatch {
        /// The offending checkpoint file.
        path: PathBuf,
        /// The version the header declares.
        found: u32,
    },
    /// The payload is shorter than the header's declared length — the
    /// classic torn write.
    TruncatedPayload {
        /// The offending checkpoint file.
        path: PathBuf,
        /// Bytes the header promised.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The payload's FNV-1a digest does not match the header.
    ChecksumMismatch {
        /// The offending checkpoint file.
        path: PathBuf,
        /// The digest the header promised.
        expected: u64,
        /// The digest of the bytes present.
        found: u64,
    },
    /// The payload passed the frame checks but failed to deserialize
    /// (the detail carries the byte/line position from the JSON layer)
    /// or described an internally inconsistent session.
    CorruptPayload {
        /// The offending checkpoint file.
        path: PathBuf,
        /// The deserializer's positional error or the consistency check
        /// that failed.
        detail: String,
    },
    /// A journaled batch failed to replay through the normal push path.
    Replay {
        /// The journal file being replayed.
        path: PathBuf,
        /// Zero-based index of the failing record within the file.
        record: usize,
        /// The push error.
        detail: String,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoCheckpoint { dir, rejected } => {
                write!(f, "no usable checkpoint in {}", dir.display())?;
                for r in rejected {
                    write!(f, "; {r}")?;
                }
                Ok(())
            }
            RecoveryError::Io { path, error } => {
                write!(f, "recovery i/o on {}: {error}", path.display())
            }
            RecoveryError::CorruptHeader { path, detail } => {
                write!(f, "{}: corrupt header: {detail}", path.display())
            }
            RecoveryError::VersionMismatch { path, found } => write!(
                f,
                "{}: format version {found}, this build reads v{VERSION}",
                path.display()
            ),
            RecoveryError::TruncatedPayload {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: payload truncated: header promises {expected} bytes, {found} present",
                path.display()
            ),
            RecoveryError::ChecksumMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "{}: checksum mismatch: header {expected:016x}, payload {found:016x}",
                path.display()
            ),
            RecoveryError::CorruptPayload { path, detail } => {
                write!(f, "{}: corrupt payload: {detail}", path.display())
            }
            RecoveryError::Replay {
                path,
                record,
                detail,
            } => write!(
                f,
                "{}: record {record} failed to replay: {detail}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The journal suffix a recovery could not reproduce: everything in
/// `path` at or beyond `valid_bytes` (and any later generation files).
#[derive(Clone, Debug)]
pub struct LostSuffix {
    /// The file whose tail was lost.
    pub path: PathBuf,
    /// Bytes of the file that replayed cleanly; the loss starts here.
    pub valid_bytes: u64,
    /// Why the suffix could not be replayed.
    pub detail: String,
}

impl fmt::Display for LostSuffix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lost suffix of {} beyond byte {}: {}",
            self.path.display(),
            self.valid_bytes,
            self.detail
        )
    }
}

/// What [`CheckpointedMiner::recover`] did: which checkpoint it
/// restored, how much journal it replayed, how much support-engine work
/// the whole recovery cost (restore is pinned at zero by the bench
/// gate), and what — if anything — was lost.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// The checkpoint file restored.
    pub checkpoint: PathBuf,
    /// Its generation number.
    pub checkpoint_seq: u64,
    /// Payload bytes the checkpoint restore deserialized.
    pub bytes_restored: u64,
    /// Journaled batches replayed on top of the checkpoint.
    pub batches_replayed: usize,
    /// Rows those batches carried.
    pub rows_replayed: usize,
    /// Journal bytes consumed by the replay.
    pub journal_bytes_replayed: u64,
    /// Support-engine calls during the checkpoint restore (always 0 —
    /// the invariant the recover bench pins exactly).
    pub restore_engine_calls: u64,
    /// Support-engine calls during the journal replay (0: replayed
    /// batches go through the engine-call-free delta path).
    pub replay_engine_calls: u64,
    /// Newer checkpoints that were present but rejected, newest first
    /// (each with its typed rejection rendered).
    pub skipped: Vec<String>,
    /// The journal suffix that could not be reproduced, if any.
    pub lost: Option<LostSuffix>,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restored {} ({} bytes), replayed {} batches ({} rows, {} journal bytes), \
             {} engine calls during restore, {} during replay",
            self.checkpoint.display(),
            self.bytes_restored,
            self.batches_replayed,
            self.rows_replayed,
            self.journal_bytes_replayed,
            self.restore_engine_calls,
            self.replay_engine_calls,
        )?;
        for s in &self.skipped {
            write!(f, "\nskipped: {s}")?;
        }
        if let Some(lost) = &self.lost {
            write!(f, "\n{lost}")?;
        }
        Ok(())
    }
}

/// A [`StreamingMiner`] session made durable: every push journals its
/// batch, a [`CheckpointPolicy`] periodically folds the journal into a
/// fresh full checkpoint, and [`CheckpointedMiner::recover`] rebuilds
/// the session after a crash. Built with [`RuleMiner::checkpointing`];
/// see the [module docs](self) for the on-disk format and the recovery
/// invariant.
#[derive(Debug)]
pub struct CheckpointedMiner {
    inner: StreamingMiner,
    dir: PathBuf,
    policy: CheckpointPolicy,
    /// Current generation: the newest committed checkpoint's sequence.
    seq: u64,
    /// Batches appended to the current journal since the last fold.
    journal_batches: usize,
    /// Bytes appended to the current journal since the last fold.
    journal_bytes: u64,
}

impl CheckpointedMiner {
    /// Opens a durable session in `dir`: if the directory already holds
    /// a checkpoint, the session is [recovered](CheckpointedMiner::recover)
    /// from disk and `seed` is **ignored** (the report says what was
    /// restored); otherwise the directory is created, a session is
    /// seeded from `seed`, and its initial checkpoint is written before
    /// this returns — a crash at any later point can recover at least
    /// the seed.
    pub fn open(
        config: &RuleMiner,
        seed: TransactionDb,
        dir: impl Into<PathBuf>,
    ) -> Result<(Self, Option<RecoveryReport>), RecoveryError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|error| RecoveryError::Io {
            path: dir.clone(),
            error,
        })?;
        let (checkpoints, _) = scan_dir(&dir)?;
        if !checkpoints.is_empty() {
            let (miner, report) = Self::recover(&dir)?;
            return Ok((miner, Some(report)));
        }
        let mut miner = CheckpointedMiner {
            inner: config.streaming(seed),
            dir,
            policy: CheckpointPolicy::default(),
            seq: 0,
            journal_batches: 0,
            journal_bytes: 0,
        };
        miner
            .checkpoint_now()
            .map_err(|e| checkpoint_to_recovery(e, &miner.dir))?;
        Ok((miner, None))
    }

    /// Rebuilds the session persisted in `dir`: restores the newest
    /// valid checkpoint (falling back generation by generation, each
    /// rejection recorded), replays the journaled tail through the
    /// normal push path, then folds the recovered state into a fresh
    /// checkpoint so the directory is crash-consistent again. The
    /// restore itself performs zero support-engine calls; replayed
    /// batches pay only their normal delta cost. Never panics on a
    /// corrupt directory — every failure mode is a typed
    /// [`RecoveryError`], and a torn journal tail is reported as
    /// [`RecoveryReport::lost`], not an error.
    pub fn recover(dir: impl Into<PathBuf>) -> Result<(Self, RecoveryReport), RecoveryError> {
        let dir = dir.into();
        let (checkpoints, journals) = scan_dir(&dir)?;
        let mut rejected: Vec<String> = Vec::new();
        let mut restored: Option<(u64, PathBuf, u64, StreamingMiner)> = None;
        for (&seq, path) in checkpoints.iter().rev() {
            match load_checkpoint(path) {
                Ok((wire, payload_len)) => match StreamingMiner::from_wire(wire) {
                    Ok(session) => {
                        restored = Some((seq, path.clone(), payload_len, session));
                        break;
                    }
                    Err(detail) => rejected.push(
                        RecoveryError::CorruptPayload {
                            path: path.clone(),
                            detail,
                        }
                        .to_string(),
                    ),
                },
                Err(e) => rejected.push(e.to_string()),
            }
        }
        let Some((seq, checkpoint, bytes_restored, mut session)) = restored else {
            return Err(RecoveryError::NoCheckpoint { dir, rejected });
        };
        let restore_engine_calls = session.context().closure_cache_stats().engine_calls();

        // Replay the journaled tail: generation `seq` first, then — when
        // a newer (rejected) generation left its journal behind — each
        // successor in order. A gap or a torn record ends the replay;
        // everything beyond it is the lost suffix.
        let mut report = RecoveryReport {
            checkpoint,
            checkpoint_seq: seq,
            bytes_restored,
            batches_replayed: 0,
            rows_replayed: 0,
            journal_bytes_replayed: 0,
            restore_engine_calls,
            replay_engine_calls: 0,
            skipped: rejected,
            lost: None,
        };
        let newest_journal = journals.keys().copied().max();
        let mut j = seq;
        while let Some(max) = newest_journal.filter(|&m| j <= m) {
            match journals.get(&j) {
                None => {
                    report.lost = Some(LostSuffix {
                        path: journal_path(&dir, j),
                        valid_bytes: 0,
                        detail: format!(
                            "journal generation {j} is missing but generation {max} exists"
                        ),
                    });
                    break;
                }
                Some(path) => {
                    replay_journal(path, &mut session, &mut report)?;
                    if report.lost.is_some() {
                        break;
                    }
                }
            }
            j += 1;
        }
        report.replay_engine_calls = session
            .context()
            .closure_cache_stats()
            .engine_calls()
            .saturating_sub(restore_engine_calls);

        // Fold the recovered state into a fresh generation past every
        // file present (valid or not), retiring any torn tail: pushes
        // after a recovery must never append beyond a lost suffix.
        let base = checkpoints
            .keys()
            .chain(journals.keys())
            .copied()
            .max()
            .unwrap_or(seq);
        let mut miner = CheckpointedMiner {
            inner: session,
            dir,
            policy: CheckpointPolicy::default(),
            seq: base,
            journal_batches: 0,
            journal_bytes: 0,
        };
        miner
            .checkpoint_now()
            .map_err(|e| checkpoint_to_recovery(e, &miner.dir))?;
        Ok((miner, report))
    }

    /// Replaces the fold policy (builder-style; default
    /// [`CheckpointPolicy::default`]).
    pub fn policy(mut self, policy: CheckpointPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the session's retention policy **and immediately folds a
    /// fresh checkpoint** carrying it: the window must be persisted
    /// before any batch is journaled under it, or a recovery would
    /// replay the journal under the old policy and diverge from the
    /// pre-crash session.
    pub fn set_window(&mut self, window: Window) -> Result<(), CheckpointError> {
        self.inner.set_window(window);
        self.checkpoint_now().map(|_| ())
    }

    /// Pushes one batch through the wrapped session, journals it (the
    /// record is flushed before this returns — a batch is durable once
    /// acknowledged), and folds the journal into a fresh checkpoint
    /// when the [`CheckpointPolicy`] says it is due.
    pub fn push_batch(&mut self, rows: Vec<Vec<u32>>) -> Result<BasesDelta, CheckpointError> {
        if rows.is_empty() {
            // An empty batch is a session-level no-op; nothing to journal.
            return Ok(self.inner.push_batch(rows)?);
        }
        let record = encode_record(&rows)?;
        let delta = self.inner.push_batch(rows)?;
        let path = journal_path(&self.dir, self.seq);
        append_synced(&path, &record).map_err(|error| CheckpointError::Io { path, error })?;
        self.journal_batches += 1;
        self.journal_bytes += record.len() as u64;
        if self.policy.due(self.journal_batches, self.journal_bytes) {
            self.checkpoint_now()?;
        }
        Ok(delta)
    }

    /// Folds the current state into a fresh checkpoint generation now,
    /// regardless of policy: write-to-temp → flush → atomic rename,
    /// then a new empty journal, then retirement of generations older
    /// than the previous one. Returns the new checkpoint's path.
    pub fn checkpoint_now(&mut self) -> Result<PathBuf, CheckpointError> {
        self.checkpoint_with(&FaultFs::default())
    }

    /// [`CheckpointedMiner::checkpoint_now`] with fault injection — the
    /// test hook behind the crash-safety properties. A non-clean plan
    /// leaves the generation bookkeeping untouched (the write is
    /// presumed lost), so tests can corrupt a write and then recover
    /// exactly as a crashed process would.
    pub fn checkpoint_with(&mut self, faults: &FaultFs) -> Result<PathBuf, CheckpointError> {
        let next = self.seq + 1;
        let mut bytes = encode_checkpoint(&self.inner.to_wire())?;
        faults.corrupt(&mut bytes);
        let path = checkpoint_path(&self.dir, next);
        let tmp = path.with_extension("ckpt.tmp");
        write_synced(&tmp, &bytes).map_err(|error| CheckpointError::Io {
            path: tmp.clone(),
            error,
        })?;
        if faults.drop_rename {
            return Ok(tmp);
        }
        fs::rename(&tmp, &path).map_err(|error| CheckpointError::Io {
            path: path.clone(),
            error,
        })?;
        sync_dir(&self.dir);
        if faults.is_clean() {
            let journal = journal_path(&self.dir, next);
            write_synced(&journal, b"").map_err(|error| CheckpointError::Io {
                path: journal,
                error,
            })?;
            let previous = self.seq;
            self.seq = next;
            self.journal_batches = 0;
            self.journal_bytes = 0;
            retire_generations(&self.dir, previous);
        }
        Ok(path)
    }

    /// The wrapped live session.
    pub fn session(&self) -> &StreamingMiner {
        &self.inner
    }

    /// The current bases (delegates to [`StreamingMiner::bases`]).
    pub fn bases(&mut self) -> &MinedBases {
        self.inner.bases()
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current checkpoint generation number.
    pub fn generation(&self) -> u64 {
        self.seq
    }

    /// Batches journaled since the last fold.
    pub fn journal_batches(&self) -> usize {
        self.journal_batches
    }

    /// Bytes journaled since the last fold.
    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes
    }
}

/// Writes a one-off checkpoint of `session` into `dir` as a fresh
/// generation (past whatever the directory already holds), with the
/// standard temp-write → flush → rename discipline. The
/// [`crate::serve::RuleServer`] checkpoint hook: a serving session can
/// be snapshotted without wrapping its writer in a
/// [`CheckpointedMiner`].
pub fn write_snapshot(
    session: &StreamingMiner,
    dir: impl Into<PathBuf>,
) -> Result<PathBuf, CheckpointError> {
    let dir = dir.into();
    fs::create_dir_all(&dir).map_err(|error| CheckpointError::Io {
        path: dir.clone(),
        error,
    })?;
    let (checkpoints, journals) = scan_dir(&dir).map_err(|e| match e {
        RecoveryError::Io { path, error } => CheckpointError::Io { path, error },
        other => CheckpointError::Encode(other.to_string()),
    })?;
    let next = checkpoints
        .keys()
        .chain(journals.keys())
        .copied()
        .max()
        .unwrap_or(0)
        + 1;
    let bytes = encode_checkpoint(&session.to_wire())?;
    let path = checkpoint_path(&dir, next);
    let tmp = path.with_extension("ckpt.tmp");
    write_synced(&tmp, &bytes).map_err(|error| CheckpointError::Io {
        path: tmp.clone(),
        error,
    })?;
    fs::rename(&tmp, &path).map_err(|error| CheckpointError::Io {
        path: path.clone(),
        error,
    })?;
    sync_dir(&dir);
    Ok(path)
}

/// Maps a fold failure inside the recovery path onto the recovery error
/// vocabulary.
fn checkpoint_to_recovery(e: CheckpointError, dir: &Path) -> RecoveryError {
    match e {
        CheckpointError::Io { path, error } => RecoveryError::Io { path, error },
        other => RecoveryError::CorruptPayload {
            path: dir.to_path_buf(),
            detail: other.to_string(),
        },
    }
}

/// `checkpoint-<seq>.ckpt` inside `dir` (zero-padded so lexicographic
/// and numeric order agree for the first million generations).
fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:06}.ckpt"))
}

/// `journal-<seq>.log` inside `dir`.
fn journal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:06}.log"))
}

/// Parses `prefix-<digits>.<ext>` back to its sequence number.
fn parse_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_suffix(ext)?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// All checkpoint and journal files in `dir`, keyed by generation.
/// Temp files (`*.tmp`) and anything else are ignored — a dropped
/// rename leaves only a temp file, which recovery must not read.
#[allow(clippy::type_complexity)]
fn scan_dir(dir: &Path) -> Result<(BTreeMap<u64, PathBuf>, BTreeMap<u64, PathBuf>), RecoveryError> {
    let mut checkpoints = BTreeMap::new();
    let mut journals = BTreeMap::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((checkpoints, journals)),
        Err(error) => {
            return Err(RecoveryError::Io {
                path: dir.to_path_buf(),
                error,
            })
        }
    };
    for entry in entries {
        let entry = entry.map_err(|error| RecoveryError::Io {
            path: dir.to_path_buf(),
            error,
        })?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = parse_seq(name, "checkpoint-", ".ckpt") {
            checkpoints.insert(seq, entry.path());
        } else if let Some(seq) = parse_seq(name, "journal-", ".log") {
            journals.insert(seq, entry.path());
        }
    }
    Ok((checkpoints, journals))
}

/// Deletes every generation strictly older than `keep_from` — called
/// after a successful fold with the *previous* generation, so the
/// directory retains the current checkpoint and its fallback.
fn retire_generations(dir: &Path, keep_from: u64) {
    let Ok((checkpoints, journals)) = scan_dir(dir) else {
        return;
    };
    for (seq, path) in checkpoints.iter().chain(journals.iter()) {
        if *seq < keep_from {
            // Retirement is best-effort: a leftover old generation is
            // harmless (recovery prefers the newest valid one).
            let _ = fs::remove_file(path);
        }
    }
}

/// Renders the framed checkpoint bytes: header line + JSON payload.
fn encode_checkpoint(wire: &SessionWire) -> Result<Vec<u8>, CheckpointError> {
    let payload =
        serde_json::to_string(wire).map_err(|e| CheckpointError::Encode(e.to_string()))?;
    let digest = fnv1a64(payload.as_bytes());
    let mut bytes = format!(
        "{MAGIC} v{VERSION} len={} fnv={digest:016x}\n",
        payload.len()
    )
    .into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    Ok(bytes)
}

/// Reads and validates one checkpoint file: header shape, version,
/// declared length, checksum — then deserializes the payload. Returns
/// the wire form and the payload length.
fn load_checkpoint(path: &Path) -> Result<(SessionWire, u64), RecoveryError> {
    let bytes = fs::read(path).map_err(|error| RecoveryError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    let corrupt = |detail: String| RecoveryError::CorruptHeader {
        path: path.to_path_buf(),
        detail,
    };
    let nl = bytes
        .iter()
        .take(MAX_HEADER)
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt("no header line".to_string()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| corrupt("header is not ASCII".to_string()))?;
    let mut tokens = header.split(' ');
    if tokens.next() != Some(MAGIC) {
        return Err(corrupt(format!("bad magic in {header:?}")));
    }
    let version: u32 = tokens
        .next()
        .and_then(|t| t.strip_prefix('v'))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| corrupt(format!("bad version in {header:?}")))?;
    if version != VERSION {
        return Err(RecoveryError::VersionMismatch {
            path: path.to_path_buf(),
            found: version,
        });
    }
    let len: u64 = tokens
        .next()
        .and_then(|t| t.strip_prefix("len="))
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| corrupt(format!("bad length in {header:?}")))?;
    let digest: u64 = tokens
        .next()
        .and_then(|t| t.strip_prefix("fnv="))
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| corrupt(format!("bad checksum in {header:?}")))?;
    if tokens.next().is_some() {
        return Err(corrupt(format!("trailing header tokens in {header:?}")));
    }
    let payload = &bytes[nl + 1..];
    if (payload.len() as u64) < len {
        return Err(RecoveryError::TruncatedPayload {
            path: path.to_path_buf(),
            expected: len,
            found: payload.len() as u64,
        });
    }
    if payload.len() as u64 > len {
        return Err(corrupt(format!(
            "{} payload bytes beyond the declared length",
            payload.len() as u64 - len
        )));
    }
    let found = fnv1a64(payload);
    if found != digest {
        return Err(RecoveryError::ChecksumMismatch {
            path: path.to_path_buf(),
            expected: digest,
            found,
        });
    }
    let text = std::str::from_utf8(payload).map_err(|e| RecoveryError::CorruptPayload {
        path: path.to_path_buf(),
        detail: format!("payload is not UTF-8: {e}"),
    })?;
    let wire: SessionWire =
        serde_json::from_str(text).map_err(|e| RecoveryError::CorruptPayload {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
    Ok((wire, len))
}

/// Renders one framed journal record for a batch's rows.
fn encode_record(rows: &Vec<Vec<u32>>) -> Result<Vec<u8>, CheckpointError> {
    let payload =
        serde_json::to_string(rows).map_err(|e| CheckpointError::Encode(e.to_string()))?;
    let digest = fnv1a64(payload.as_bytes());
    let mut bytes = format!("{RECORD_MAGIC} {} {digest:016x} ", payload.len()).into_bytes();
    bytes.extend_from_slice(payload.as_bytes());
    bytes.push(b'\n');
    Ok(bytes)
}

/// Replays one journal file into `session`, accounting into `report`.
/// Stops at the first torn or corrupt record, recording the lost suffix
/// (everything from that record's first byte onward).
fn replay_journal(
    path: &Path,
    session: &mut StreamingMiner,
    report: &mut RecoveryReport,
) -> Result<(), RecoveryError> {
    let bytes = fs::read(path).map_err(|error| RecoveryError::Io {
        path: path.to_path_buf(),
        error,
    })?;
    let mut offset = 0usize;
    let mut record = 0usize;
    while offset < bytes.len() {
        let lose = |detail: String| LostSuffix {
            path: path.to_path_buf(),
            valid_bytes: offset as u64,
            detail,
        };
        let Some(end) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            report.lost = Some(lose("torn record (no terminator)".to_string()));
            return Ok(());
        };
        let line = &bytes[offset..offset + end];
        let rows = match decode_record(line) {
            Ok(rows) => rows,
            Err(detail) => {
                report.lost = Some(lose(format!("record {record}: {detail}")));
                return Ok(());
            }
        };
        let n_rows = rows.len();
        session
            .push_batch(rows)
            .map_err(|e| RecoveryError::Replay {
                path: path.to_path_buf(),
                record,
                detail: e.to_string(),
            })?;
        report.batches_replayed += 1;
        report.rows_replayed += n_rows;
        report.journal_bytes_replayed += (end + 1) as u64;
        offset += end + 1;
        record += 1;
    }
    Ok(())
}

/// Parses one journal record line (without its terminator) back into
/// its batch rows, validating magic, length, and checksum.
fn decode_record(line: &[u8]) -> Result<Vec<Vec<u32>>, String> {
    let text = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
    let mut parts = text.splitn(4, ' ');
    if parts.next() != Some(RECORD_MAGIC) {
        return Err("bad record magic".to_string());
    }
    let len: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or("bad record length")?;
    let digest: u64 = parts
        .next()
        .and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or("bad record checksum")?;
    let payload = parts.next().ok_or("missing record payload")?;
    if payload.len() != len {
        return Err(format!(
            "record length mismatch: declared {len}, present {}",
            payload.len()
        ));
    }
    let found = fnv1a64(payload.as_bytes());
    if found != digest {
        return Err(format!(
            "record checksum mismatch: declared {digest:016x}, present {found:016x}"
        ));
    }
    serde_json::from_str(payload).map_err(|e| e.to_string())
}

/// Writes `bytes` to `path` and flushes them to stable storage.
fn write_synced(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = fs::File::create(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// Appends `bytes` to `path` (creating it if needed) and flushes.
fn append_synced(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(bytes)?;
    file.sync_all()
}

/// Best-effort directory sync after a rename, so the new directory
/// entry itself is durable on filesystems that need it. Failure is
/// ignored: some platforms cannot sync directories at all, and the
/// rename's atomicity does not depend on it.
fn sync_dir(dir: &Path) {
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}
