//! # rulebases
//!
//! A faithful, production-grade reproduction of **"Mining Bases for
//! Association Rules Using Closed Sets"** (Taouil, Pasquier, Bastide,
//! Lakhal — ICDE 2000).
//!
//! The problem: association-rule mining floods the analyst with redundant
//! rules. The paper's answer, built on the Galois-connection framework of
//! frequent **closed** itemsets:
//!
//! * the **Duquenne-Guigues basis** ([`DuquenneGuiguesBasis`]) — a
//!   minimum-cardinality set of exact (100%-confidence) rules, one per
//!   frequent *pseudo-closed* itemset, from which every exact rule
//!   follows (Theorem 1);
//! * the **Luxenburger basis** ([`LuxenburgerBasis`]) — approximate rules
//!   between comparable frequent closed itemsets, reducible to the Hasse
//!   edges of the iceberg lattice, from which every approximate rule with
//!   its support and confidence can be derived (Theorem 2).
//!
//! Both directions are implemented: *constructing* the bases and
//! *deriving* the full rule sets back from them ([`mod@derive`]), so the
//! basis properties (soundness, completeness, minimality) are executable
//! and property-tested rather than assumed.
//!
//! ## Quickstart
//!
//! ```
//! use rulebases::{RuleMiner, MinSupport};
//! use rulebases_dataset::paper_example;
//!
//! let bases = RuleMiner::new(MinSupport::Fraction(0.4))
//!     .min_confidence(0.5)
//!     .mine(paper_example());
//!
//! // 14 exact rules collapse to a 3-rule Duquenne-Guigues basis:
//! assert_eq!(bases.exact_rules().len(), 14);
//! assert_eq!(bases.dg.len(), 3);
//! for rule in bases.dg.rules() {
//!     println!("{rule}");
//! }
//!
//! // ...and every rule is recoverable from the bases:
//! assert_eq!(bases.derive_exact_rules(), bases.exact_rules());
//! assert_eq!(bases.derive_approximate_rules(), bases.approximate_rules());
//! ```
//!
//! The substrate crates are re-exported for convenience:
//! [`rulebases_dataset`] (contexts, generators, I/O),
//! [`rulebases_mining`] (Apriori, Close, A-Close, CHARM),
//! [`rulebases_lattice`] (NextClosure, pseudo-closed sets, the iceberg
//! lattice).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod all_rules;
pub mod approx;
pub mod checkpoint;
pub mod derive;
pub mod exact;
pub mod export;
pub mod fused;
pub mod generic_basis;
pub mod metrics;
pub mod miner;
pub mod redundancy;
pub mod report;
pub mod rule;
pub mod serve;
pub mod stream;

pub use all_rules::{all_rules, count_all_rules};
pub use approx::{all_approximate_rules, LuxenburgerBasis};
pub use checkpoint::{
    CheckpointError, CheckpointPolicy, CheckpointedMiner, FaultFs, LostSuffix, RecoveryError,
    RecoveryReport,
};
pub use derive::{derive_approximate_rules, derive_exact_rules, ApproxDerivation};
pub use exact::{all_exact_rules, count_exact_rules, DuquenneGuiguesBasis};
pub use export::{read_rules_jsonl, write_rules_csv, write_rules_jsonl};
pub use fused::{FusedMiner, PipelineKind};
pub use generic_basis::{generic_basis, informative_basis, informative_basis_reduced};
pub use metrics::RuleMetrics;
pub use miner::{MinedBases, RuleMiner};
pub use redundancy::{covers, find_redundant, minimal_cover, Redundancy};
pub use report::BasisReport;
pub use rule::Rule;
pub use serve::{
    BasketMatch, MatchCost, Recommendation, RuleReader, RuleServer, ServeStats, ServedBasis,
    ServingSnapshot,
};
pub use stream::{BasesDelta, RuleSetDelta, StreamError, StreamingMiner, Window};

// Re-export the substrate crates and the most common types.
pub use rulebases_dataset::{self as dataset, MinSupport, MiningContext, TransactionDb};
pub use rulebases_lattice::{self as lattice, GenMaintenance, GenStats, IcebergLattice};
pub use rulebases_mining::{self as mining, ClosedAlgorithm};
