//! Exporting rules and bases to CSV and JSON-lines.
//!
//! Downstream users consume mined bases in other tools; both formats
//! carry the full information (antecedent, consequent, exact support
//! counts, confidence), optionally with human-readable labels.

use crate::rule::Rule;
use rulebases_dataset::{ItemDictionary, Itemset};
use std::io::{BufWriter, Write};

/// Writes rules as CSV: `antecedent,consequent,support,antecedent_support,confidence`.
///
/// Item ids are space-separated inside each side; with a dictionary,
/// labels are used and separated by `|` (labels may contain spaces).
pub fn write_rules_csv<W: Write>(
    rules: &[Rule],
    dict: Option<&ItemDictionary>,
    writer: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "antecedent,consequent,support,antecedent_support,confidence"
    )?;
    for rule in rules {
        writeln!(
            w,
            "{},{},{},{},{:.6}",
            side(&rule.antecedent, dict),
            side(&rule.consequent, dict),
            rule.support,
            rule.antecedent_support,
            rule.confidence()
        )?;
    }
    w.flush()
}

/// Writes rules as JSON-lines (one serialized [`Rule`] per line).
pub fn write_rules_jsonl<W: Write>(rules: &[Rule], writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for rule in rules {
        let line = serde_json::to_string(rule).map_err(std::io::Error::other)?;
        writeln!(w, "{line}")?;
    }
    w.flush()
}

/// Reads back JSON-lines rules (inverse of [`write_rules_jsonl`]).
pub fn read_rules_jsonl<R: std::io::BufRead>(reader: R) -> std::io::Result<Vec<Rule>> {
    let mut rules = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        rules.push(serde_json::from_str(&line).map_err(std::io::Error::other)?);
    }
    Ok(rules)
}

fn side(set: &Itemset, dict: Option<&ItemDictionary>) -> String {
    match dict {
        Some(d) => set
            .iter()
            .map(|i| {
                d.label(i)
                    .map(str::to_owned)
                    .unwrap_or_else(|| i.to_string())
            })
            .collect::<Vec<_>>()
            .join("|"),
        None => set
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::ItemDictionary;

    fn rules() -> Vec<Rule> {
        vec![
            Rule::new(Itemset::from_ids([2]), Itemset::from_ids([5]), 4, 4),
            Rule::new(Itemset::from_ids([3]), Itemset::from_ids([1]), 3, 4),
        ]
    }

    #[test]
    fn csv_with_ids() {
        let mut buf = Vec::new();
        write_rules_csv(&rules(), None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "antecedent,consequent,support,antecedent_support,confidence"
        );
        assert_eq!(lines[1], "2,5,4,4,1.000000");
        assert_eq!(lines[2], "3,1,3,4,0.750000");
    }

    #[test]
    fn csv_with_labels() {
        let dict = ItemDictionary::from_labels(["∅", "A", "B", "C", "D", "E"]);
        let mut buf = Vec::new();
        write_rules_csv(&rules(), Some(&dict), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("B,E,4,4"));
        assert!(text.contains("C,A,3,4"));
    }

    #[test]
    fn jsonl_round_trip() {
        let original = rules();
        let mut buf = Vec::new();
        write_rules_jsonl(&original, &mut buf).unwrap();
        let back = read_rules_jsonl(&buf[..]).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let back = read_rules_jsonl("\n\n".as_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(read_rules_jsonl("not json\n".as_bytes()).is_err());
    }
}
