//! The fused one-pass pipeline.
//!
//! The staged pipeline ([`RuleMiner`] with [`PipelineKind::Staged`])
//! walks the closed-set lattice three times: the miner materializes `FC`,
//! [`IcebergLattice::from_closed`] rebuilds the Hasse diagram from
//! scratch with a pairwise pass, and the frequent itemsets are re-mined
//! from the database by Apriori before the bases are derived.
//! [`FusedMiner`] collapses those traversals into the mining pass itself,
//! the construction Hamrouni et al. and Vo & Le describe for extracting
//! generic bases *during* closed-set discovery:
//!
//! * as Close / A-Close / CHARM prove each closed set, it streams through
//!   a [`ClosedSink`] into an [`IncrementalLattice`] that maintains the
//!   covering relation (and the minimal-generator tags the levelwise
//!   miners carry for free) insertion by insertion — no post-hoc rebuild;
//! * the frequent itemsets are *derived* from `FC` by the generating-set
//!   property of the paper's Definition 1 (every frequent itemset is a
//!   subset of a frequent closed itemset and takes its closure's
//!   support) instead of re-mined — no second levelwise database scan;
//! * both Luxenburger bases read straight off the finished lattice (the
//!   reduced basis is its edge set; the full basis its reachability),
//!   and the Duquenne-Guigues basis is built from the derived frequent
//!   sets and the already-indexed `FC`.
//!
//! The two pipelines are property-tested equal (closed sets, Hasse
//! edges, both bases) across every engine backend in
//! `tests/equivalence.rs`; the `bases-fused` bench ablates their engine
//! traffic via [`MiningContext::closure_cache_stats`] — the fused path
//! answers the same questions with strictly fewer engine calls.
//!
//! [`ClosedSink`]: rulebases_mining::ClosedSink
//! [`IncrementalLattice`]: rulebases_lattice::IncrementalLattice
//! [`IcebergLattice::from_closed`]: rulebases_lattice::IcebergLattice::from_closed

use crate::approx::LuxenburgerBasis;
use crate::exact::DuquenneGuiguesBasis;
use crate::miner::{MinedBases, RuleMiner};
use rulebases_dataset::{Itemset, MinSupport, MiningContext, Support};
use rulebases_lattice::IncrementalLattice;
use rulebases_mining::{Apriori, ClosedItemsets, ClosedSink, FrequentItemsets};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which traversal structure [`RuleMiner`] runs.
///
/// Spelled `staged` / `fused` in CLI and environment contexts (the
/// [`FromStr`] and [`fmt::Display`] implementations round-trip).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineKind {
    /// The three-pass oracle: mine `FC`, rebuild the Hasse diagram
    /// pairwise, re-mine `F` with Apriori, then derive the bases.
    #[default]
    Staged,
    /// The one-pass path: lattice and generator tags built during the
    /// mining traversal, `F` derived from `FC`, bases read off the
    /// lattice.
    Fused,
}

impl PipelineKind {
    /// Both pipelines — the ablation axis of the `bases-fused` bench and
    /// the equivalence tests.
    pub const ALL: [PipelineKind; 2] = [PipelineKind::Staged, PipelineKind::Fused];

    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Staged => "staged",
            PipelineKind::Fused => "fused",
        }
    }
}

impl fmt::Display for PipelineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`PipelineKind`] from its textual form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePipelineKindError(String);

impl fmt::Display for ParsePipelineKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown pipeline {:?}: expected staged or fused", self.0)
    }
}

impl std::error::Error for ParsePipelineKindError {}

impl FromStr for PipelineKind {
    type Err = ParsePipelineKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "staged" => Ok(PipelineKind::Staged),
            "fused" => Ok(PipelineKind::Fused),
            other => Err(ParsePipelineKindError(other.to_owned())),
        }
    }
}

/// The one-pass bases miner: a [`RuleMiner`] pinned to
/// [`PipelineKind::Fused`], with the same builder surface.
///
/// ```
/// use rulebases::{FusedMiner, MinSupport};
/// use rulebases_dataset::paper_example;
///
/// let bases = FusedMiner::new(MinSupport::Fraction(0.4))
///     .min_confidence(0.5)
///     .mine(paper_example());
/// assert_eq!(bases.dg.len(), 3);
/// assert_eq!(bases.lattice.n_edges(), 7);
/// ```
#[derive(Clone, Debug)]
pub struct FusedMiner {
    inner: RuleMiner,
}

impl FusedMiner {
    /// Creates a fused miner at the given minimum support (same defaults
    /// as [`RuleMiner::new`] otherwise).
    pub fn new(min_support: impl Into<MinSupport>) -> Self {
        FusedMiner {
            inner: RuleMiner::new(min_support).pipeline(PipelineKind::Fused),
        }
    }

    /// Sets the confidence threshold for approximate rules.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    pub fn min_confidence(mut self, minconf: f64) -> Self {
        self.inner = self.inner.min_confidence(minconf);
        self
    }

    /// Selects the closed-itemset algorithm driving the traversal.
    pub fn algorithm(mut self, algorithm: rulebases_mining::ClosedAlgorithm) -> Self {
        self.inner = self.inner.algorithm(algorithm);
        self
    }

    /// Selects the [`SupportEngine`](rulebases_dataset::SupportEngine)
    /// backend (see [`RuleMiner::engine`]).
    pub fn engine(mut self, engine: rulebases_dataset::EngineKind) -> Self {
        self.inner = self.inner.engine(engine);
        self
    }

    /// Sets the thread policy (see [`RuleMiner::parallelism`]).
    pub fn parallelism(mut self, parallelism: rulebases_dataset::Parallelism) -> Self {
        self.inner = self.inner.parallelism(parallelism);
        self
    }

    /// Also emit rules with an empty antecedent; off by default.
    pub fn include_empty_antecedent(mut self, include: bool) -> Self {
        self.inner = self.inner.include_empty_antecedent(include);
        self
    }

    /// Runs the fused pipeline on a database.
    pub fn mine(&self, db: rulebases_dataset::TransactionDb) -> MinedBases {
        self.inner.mine(db)
    }

    /// Runs the fused pipeline on an existing context (keeping that
    /// context's engine).
    pub fn mine_context(&self, ctx: &MiningContext) -> MinedBases {
        self.inner.mine_context(ctx)
    }
}

/// The sink the fused traversal mines into: every emission goes straight
/// into the incremental Hasse builder (which also dedups re-emissions and
/// keeps the generator tags minimal).
#[derive(Default)]
struct LatticeSink {
    lattice: IncrementalLattice,
}

impl ClosedSink for LatticeSink {
    fn accept(&mut self, set: &Itemset, support: Support, generator: Option<&Itemset>) {
        self.lattice.insert(set, support, generator);
    }
}

/// Derives the frequent itemsets from the frequent closed itemsets — the
/// generating-set property: `F = { X ⊆ C : C ∈ FC }` with
/// `supp(X) = supp(h(X)) = max { supp(C) : X ⊆ C ∈ FC }`.
///
/// Exponential in the widest closed set, exactly like materializing `F`
/// by mining is; the (practically unreachable) fallback keeps itemsets
/// wider than the subset-enumeration limit correct rather than fast.
pub(crate) fn derive_frequent(
    closed: &ClosedItemsets,
    miner: &RuleMiner,
    ctx: &MiningContext,
) -> FrequentItemsets {
    if closed.iter().all(|(s, _)| s.len() < 64) {
        closed.expand_to_frequent()
    } else {
        Apriori::new()
            .parallelism(miner.parallelism_config())
            .mine(ctx, miner.min_support_config())
    }
}

/// Assembles a [`MinedBases`] bundle from a finished lattice (+ its
/// generator tags): `F` derived from `FC` by the generating-set property,
/// the DG basis from the derived sets, both Luxenburger bases read off
/// the lattice. The common tail of the fused pipeline and of every
/// [`StreamingMiner`](crate::stream::StreamingMiner) batch — the batch
/// pipeline is literally the one-snapshot case of the streaming one.
pub(crate) fn assemble_bases(
    miner: &RuleMiner,
    ctx: &MiningContext,
    lattice: rulebases_lattice::IcebergLattice,
    minimal_generators: Vec<Vec<Itemset>>,
    min_count: Support,
) -> MinedBases {
    let n = ctx.n_objects();
    let closed = ClosedItemsets::from_pairs(
        (0..lattice.n_nodes())
            .map(|i| {
                let (s, sup) = lattice.node(i);
                (s.clone(), sup)
            })
            .collect(),
        min_count,
        n,
    );

    let frequent = derive_frequent(&closed, miner, ctx);
    let dg = DuquenneGuiguesBasis::build(&frequent, &closed, ctx.n_items());
    let lux_full = LuxenburgerBasis::full_from_lattice(
        &lattice,
        miner.min_confidence_config(),
        miner.include_empty_antecedent_config(),
    );
    // Derivation paths may start at the bottom, so the reduced basis
    // always keeps bottom edges internally; reporting filters them.
    let lux_reduced = LuxenburgerBasis::reduced(&lattice, miner.min_confidence_config(), true);

    MinedBases {
        min_count,
        n_objects: n,
        min_support: miner.min_support_config(),
        min_confidence: miner.min_confidence_config(),
        include_empty_antecedent: miner.include_empty_antecedent_config(),
        pipeline: PipelineKind::Fused,
        frequent,
        closed,
        lattice,
        minimal_generators: Some(minimal_generators),
        dg,
        lux_full,
        lux_reduced,
    }
}

/// The absolute support threshold for an `n`-object context, matching the
/// miners' empty-context convention (threshold pinned to 1).
pub(crate) fn min_count_for(minsup: MinSupport, n: usize) -> Support {
    if n == 0 {
        1
    } else {
        minsup.to_count(n)
    }
}

/// Runs the fused pipeline for `miner` over `ctx`: one mining traversal
/// feeding the incremental lattice, then every product read off it.
pub(crate) fn mine_bases(miner: &RuleMiner, ctx: &MiningContext) -> MinedBases {
    let min_count = min_count_for(miner.min_support_config(), ctx.n_objects());

    let mut sink = LatticeSink::default();
    let stats = miner.algorithm_config().mine_sink_par(
        ctx.engine(),
        miner.min_support_config(),
        miner.parallelism_config(),
        &mut sink,
    );
    let (lattice, minimal_generators) = sink.lattice.finish();
    let mut bases = assemble_bases(miner, ctx, lattice, minimal_generators, min_count);
    bases.closed.stats = stats;
    bases
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;
    use rulebases_mining::ClosedAlgorithm;

    #[test]
    fn pipeline_kind_round_trips() {
        for kind in PipelineKind::ALL {
            assert_eq!(kind.to_string().parse::<PipelineKind>().unwrap(), kind);
        }
        assert_eq!(
            "fused".parse::<PipelineKind>().unwrap(),
            PipelineKind::Fused
        );
        assert_eq!(
            " staged ".parse::<PipelineKind>().unwrap(),
            PipelineKind::Staged
        );
        assert!("bogus".parse::<PipelineKind>().is_err());
        assert_eq!(PipelineKind::default(), PipelineKind::Staged);
    }

    #[test]
    fn fused_matches_staged_on_paper_example() {
        let staged = RuleMiner::new(MinSupport::Fraction(0.4))
            .min_confidence(0.5)
            .mine(paper_example());
        let fused = FusedMiner::new(MinSupport::Fraction(0.4))
            .min_confidence(0.5)
            .mine(paper_example());
        assert_eq!(fused.pipeline, PipelineKind::Fused);
        assert_eq!(staged.pipeline, PipelineKind::Staged);
        assert_eq!(
            fused.closed.clone().into_sorted_vec(),
            staged.closed.clone().into_sorted_vec()
        );
        assert_eq!(
            fused.lattice.edges().collect::<Vec<_>>(),
            staged.lattice.edges().collect::<Vec<_>>()
        );
        assert_eq!(fused.frequent.len(), staged.frequent.len());
        assert_eq!(fused.dg.rules(), staged.dg.rules());
        assert_eq!(fused.lux_full.rules(), staged.lux_full.rules());
        assert_eq!(fused.lux_reduced.rules(), staged.lux_reduced.rules());
        // And the fused bundle still derives everything.
        assert_eq!(fused.exact_rules(), fused.derive_exact_rules());
        assert_eq!(fused.approximate_rules(), fused.derive_approximate_rules());
    }

    #[test]
    fn fused_generator_tags_are_minimal_generators() {
        // The levelwise traversals tag each closure class with its
        // minimal generators; CHARM's IT-tree cannot and leaves the tags
        // empty.
        let ctx = MiningContext::new(paper_example());
        for algo in [ClosedAlgorithm::Close, ClosedAlgorithm::AClose] {
            let bases = FusedMiner::new(MinSupport::Count(2))
                .algorithm(algo)
                .mine_context(&ctx);
            let tags = bases.minimal_generators.as_ref().unwrap();
            assert_eq!(tags.len(), bases.lattice.n_nodes());
            let mut seen = 0;
            for (node, generators) in tags.iter().enumerate() {
                let (closure, support) = bases.lattice.node(node);
                assert!(!generators.is_empty(), "{algo}: node {node} untagged");
                for g in generators {
                    seen += 1;
                    // Same closure class...
                    assert_eq!(&ctx.closure(g), closure, "{algo}");
                    // ...and minimal: every facet has strictly larger
                    // support.
                    for facet in g.facets() {
                        assert!(ctx.support(&facet) > support, "{algo}: {g:?} not minimal");
                    }
                }
            }
            // BE is generated by both B and E.
            let be = bases.lattice.position(&Itemset::from_ids([2, 5])).unwrap();
            assert_eq!(
                tags[be],
                vec![Itemset::from_ids([2]), Itemset::from_ids([5])],
                "{algo}"
            );
            assert!(seen >= bases.lattice.n_nodes(), "{algo}");
        }
        // Staged runs carry no tags.
        let staged = RuleMiner::new(MinSupport::Count(2)).mine_context(&ctx);
        assert!(staged.minimal_generators.is_none());
    }

    #[test]
    fn fused_empty_database() {
        let bases = FusedMiner::new(MinSupport::Fraction(0.5))
            .mine(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert_eq!(bases.frequent.len(), 0);
        assert!(bases.dg.is_empty());
        assert!(bases.exact_rules().is_empty());
        assert!(bases.approximate_rules().is_empty());
        assert_eq!(bases.lattice.n_nodes(), 0);
    }

    #[test]
    fn fused_skips_the_apriori_scan() {
        // The acceptance claim in miniature: on the paper example the
        // fused pipeline answers every engine question the staged one
        // answers, with strictly fewer engine calls (no Apriori re-scan
        // of the database, no pairwise lattice rebuild).
        let staged_ctx = MiningContext::new(paper_example());
        let _ = RuleMiner::new(MinSupport::Count(2)).mine_context(&staged_ctx);
        let staged_calls = staged_ctx.closure_cache_stats().engine_calls();

        let fused_ctx = MiningContext::new(paper_example());
        let _ = FusedMiner::new(MinSupport::Count(2)).mine_context(&fused_ctx);
        let fused_calls = fused_ctx.closure_cache_stats().engine_calls();

        assert!(
            fused_calls < staged_calls,
            "fused {fused_calls} !< staged {staged_calls}"
        );
        // The fused frequent itemsets are derived, not re-mined: zero
        // database passes on that product.
        let fused = FusedMiner::new(MinSupport::Count(2)).mine(paper_example());
        assert_eq!(fused.frequent.stats.db_passes, 0);
    }
}
