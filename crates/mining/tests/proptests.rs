//! Property-based tests for the mining crate: counting engines against a
//! naive scan, the closed/frequent correspondence, and miner bookkeeping.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases_dataset::{Itemset, MinSupport, MiningContext, TransactionDb};
use rulebases_mining::brute::{brute_closed, brute_frequent};
use rulebases_mining::counting::{count_candidates, CountingStrategy};
use rulebases_mining::hash_tree::HashTree;
use rulebases_mining::{mine_generators, Apriori, Close, ClosedMiner, FrequentMiner};

fn contexts() -> impl Strategy<Value = TransactionDb> {
    vec(vec(0u32..10, 0..7), 1..12).prop_map(TransactionDb::from_rows)
}

/// Random candidate sets of a fixed arity `k`, with ids spread across
/// hash-tree buckets.
fn candidates(k: usize) -> impl Strategy<Value = Vec<Itemset>> {
    vec(vec(0u32..60, k..=k), 1..25).prop_map(move |raw| {
        let mut out: Vec<Itemset> = raw
            .into_iter()
            .map(Itemset::from_ids)
            .filter(|s| s.len() == k) // drop sets that shrank via dedup
            .collect();
        out.sort();
        out.dedup();
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn counting_engines_agree_with_naive_scan(
        db in contexts(),
        cands in candidates(2),
    ) {
        if cands.is_empty() {
            return Ok(());
        }
        let ctx = MiningContext::new(db);
        let naive: Vec<u64> = cands
            .iter()
            .map(|c| ctx.horizontal().support(c))
            .collect();
        for strategy in [
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Auto,
        ] {
            prop_assert_eq!(
                &count_candidates(&ctx, &cands, 2, strategy),
                &naive,
                "{:?}", strategy
            );
        }
    }

    #[test]
    fn hash_tree_counts_exactly(db in contexts(), cands in candidates(3)) {
        if cands.is_empty() {
            return Ok(());
        }
        let ctx = MiningContext::new(db);
        let tree = HashTree::build(&cands, 3);
        let mut counts = vec![0u64; cands.len()];
        for t in ctx.horizontal().iter() {
            tree.count_transaction(t, &mut counts);
        }
        for (i, c) in cands.iter().enumerate() {
            prop_assert_eq!(counts[i], ctx.horizontal().support(c), "{:?}", c);
        }
    }

    #[test]
    fn closed_expand_covers_frequent(db in contexts(), min_count in 1u64..4) {
        // Expanding FC regenerates exactly the frequent itemsets with
        // their supports — the "generating set" property of Definition 1.
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let fc = brute_closed(&ctx, threshold);
        let frequent = brute_frequent(&ctx, threshold);
        if fc.iter().any(|(s, _)| s.len() >= 20) {
            return Ok(()); // keep the exponential expansion bounded
        }
        let expanded = fc.expand_to_frequent();
        prop_assert_eq!(expanded.len(), frequent.len());
        for (set, support) in frequent.iter() {
            prop_assert_eq!(expanded.support(set), Some(support), "{:?}", set);
        }
    }

    #[test]
    fn closure_lookup_equals_galois_closure(db in contexts(), ids in vec(0u32..10, 0..4)) {
        let ctx = MiningContext::new(db);
        let fc = brute_closed(&ctx, MinSupport::Count(1));
        let x = Itemset::from_ids(
            ids.into_iter().filter(|&i| (i as usize) < ctx.n_items()),
        );
        if ctx.support(&x) == 0 || ctx.n_objects() == 0 {
            return Ok(()); // closure_of only covers frequent itemsets
        }
        let (closure, support) = fc.closure_of(&x).expect("supported itemset has a closure");
        prop_assert_eq!(closure, &ctx.closure(&x));
        prop_assert_eq!(support, ctx.support(&x));
    }

    #[test]
    fn maximal_frequent_equals_maximal_closed(db in contexts(), min_count in 1u64..4) {
        // "The maximal frequent itemsets are maximal frequent closed
        // itemsets" — the paper's Section 2 claim.
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let frequent = brute_frequent(&ctx, threshold);
        let fc = brute_closed(&ctx, threshold);
        let mut max_frequent: Vec<Itemset> =
            frequent.maximal().into_iter().cloned().collect();
        let mut max_closed: Vec<Itemset> = fc
            .maximal()
            .into_iter()
            .filter(|s| !s.is_empty())
            .cloned()
            .collect();
        max_frequent.sort();
        max_closed.sort();
        if frequent.is_empty() {
            return Ok(()); // only the (empty) bottom exists
        }
        prop_assert_eq!(max_frequent, max_closed);
    }

    #[test]
    fn close_uses_no_more_passes_than_apriori(db in contexts(), min_count in 1u64..4) {
        // The paper family's efficiency claim, as an invariant: Close's
        // levelwise frontier over generators can never be deeper than
        // Apriori's over all frequent itemsets.
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let apriori = Apriori::new().mine_frequent(&ctx, threshold);
        let close = Close::new().mine_closed(&ctx, threshold);
        prop_assert!(close.stats.db_passes <= apriori.stats.db_passes.max(1));
    }

    #[test]
    fn generator_supports_strictly_drop_along_chains(db in contexts(), min_count in 1u64..3) {
        let ctx = MiningContext::new(db);
        if ctx.n_objects() == 0 {
            return Ok(());
        }
        let generators = mine_generators(&ctx, min_count);
        for (g, support) in generators.iter() {
            // Every proper subset of a generator has strictly larger
            // support (the defining property, extended transitively).
            for sub in g.proper_subsets() {
                prop_assert!(
                    ctx.support(&sub) > support,
                    "{:?} has subset {:?} with equal support", g, sub
                );
            }
        }
    }
}
