//! The **A-Close** algorithm (Pasquier, Bastide, Taouil, Lakhal —
//! ICDT'99).
//!
//! A-Close splits closed-set mining in two phases: (1) a levelwise pass
//! discovering the frequent *minimal generators* (pruning any candidate
//! whose support equals a facet's — such a candidate cannot be minimal in
//! its closure class), then (2) one closure computation per generator.
//! Compared to Close it defers the (expensive) closures to the end, at the
//! price of counting a few more candidates.

use crate::counting::map_level;
use crate::generators::mine_generators_engine;
use crate::itemsets::{ClosedItemsets, MiningStats};
use crate::sink::{ClosedSink, CollectSink};
use crate::traits::ClosedMiner;
use rulebases_dataset::{Itemset, MinSupport, MiningContext, Parallelism, Support, SupportEngine};

/// The A-Close frequent-closed-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct AClose {
    /// Thread policy for the closure phase (one closure per generator —
    /// embarrassingly parallel).
    pub parallelism: Parallelism,
}

impl AClose {
    /// Creates an A-Close miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread policy (default [`Parallelism::Auto`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Mines the frequent closed itemsets of `ctx` at `minsup`, through
    /// the context's (cached) engine.
    pub fn mine(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine_engine(ctx.engine(), minsup)
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`.
    ///
    /// Like [`crate::close::Close`], the result contains the lattice
    /// bottom `h(∅)`.
    pub fn mine_engine(&self, engine: &dyn SupportEngine, minsup: MinSupport) -> ClosedItemsets {
        let n = engine.n_objects();
        if n == 0 {
            return ClosedItemsets::from_pairs(Vec::new(), 1, 0);
        }
        let min_count = minsup.to_count(n);
        let mut sink = CollectSink::new();
        let stats = self.mine_engine_sink(engine, minsup, &mut sink);
        let mut result = sink.into_closed(min_count, n);
        result.stats = stats;
        result
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`, streaming every `(closure, support)` pair into `sink`
    /// tagged with the minimal generator it was closed from. Distinct
    /// generators of one closure class produce duplicate emissions; sinks
    /// deduplicate (see [`ClosedSink`]).
    pub fn mine_engine_sink(
        &self,
        engine: &dyn SupportEngine,
        minsup: MinSupport,
        sink: &mut dyn ClosedSink,
    ) -> MiningStats {
        let n = engine.n_objects();
        if n == 0 {
            return MiningStats::default();
        }
        let min_count = minsup.to_count(n);

        // Phase 1: frequent minimal generators (includes ∅ for the bottom).
        let generators = mine_generators_engine(engine, min_count);
        let mut stats = generators.stats;

        // Phase 2: close every generator. One extra conceptual pass;
        // closures are independent, so wide generator sets fan over
        // chunks (results stay in generator order — emission stays
        // deterministic). A sharded engine fans each closure internally,
        // so the phase stays sequential rather than nest thread pools.
        stats.db_passes += 1;
        let close_one = |(g, support): &(&Itemset, Support)| (engine.closure(g), *support);
        let gens: Vec<(&Itemset, Support)> = generators.iter().collect();
        let pairs: Vec<(Itemset, Support)> = map_level(engine, self.parallelism, &gens, close_one);
        for ((generator, _), (closure, support)) in gens.iter().zip(&pairs) {
            sink.accept(closure, *support, Some(generator));
        }
        stats
    }
}

impl ClosedMiner for AClose {
    fn name(&self) -> &'static str {
        "a-close"
    }

    fn mine_closed(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine(ctx, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close::Close;
    use rulebases_dataset::paper_example;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn matches_close_on_paper_example() {
        let ctx = MiningContext::new(paper_example());
        for minsup in [
            MinSupport::Count(1),
            MinSupport::Count(2),
            MinSupport::Count(3),
            MinSupport::Fraction(0.8),
        ] {
            let a = AClose::new().mine(&ctx, minsup);
            let c = Close::new().mine(&ctx, minsup);
            assert_eq!(
                a.clone().into_sorted_vec(),
                c.clone().into_sorted_vec(),
                "at {minsup}"
            );
        }
    }

    #[test]
    fn closed_sets_are_closed() {
        let ctx = MiningContext::new(paper_example());
        let fc = AClose::new().mine(&ctx, MinSupport::Count(2));
        for (s, sup) in fc.iter() {
            assert!(ctx.is_closed(s), "{s:?}");
            assert_eq!(ctx.support(s), sup);
        }
    }

    #[test]
    fn paper_example_counts() {
        let ctx = MiningContext::new(paper_example());
        let fc = AClose::new().mine(&ctx, MinSupport::Count(2));
        assert_eq!(fc.len(), 6); // ∅, C, AC, BE, BCE, ABCE
        assert_eq!(fc.support_of_closed(&set(&[2, 3, 5])), Some(3));
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert!(AClose::new().mine(&ctx, MinSupport::Count(1)).is_empty());
    }

    #[test]
    fn forced_parallelism_matches_sequential() {
        let rows: Vec<Vec<u32>> = (0..80u32)
            .map(|t| vec![t % 4, 4 + t % 3, 7 + (t / 2) % 4])
            .collect();
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(rows));
        let sequential = AClose::new()
            .parallelism(Parallelism::Off)
            .mine(&ctx, MinSupport::Count(2));
        let parallel = AClose::new()
            .parallelism(Parallelism::Fixed(3))
            .mine(&ctx, MinSupport::Count(2));
        assert_eq!(
            parallel.into_sorted_vec(),
            sequential.clone().into_sorted_vec(),
        );
    }
}
