//! Result containers shared by all miners.

use rulebases_dataset::{Itemset, Support};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Bookkeeping every miner reports alongside its result; the paper's
/// efficiency argument for Close/A-Close is precisely "fewer database
/// passes and fewer candidates", so the harness surfaces both.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningStats {
    /// Number of full database passes performed.
    pub db_passes: usize,
    /// Number of candidate itemsets whose support was counted.
    pub candidates_counted: usize,
}

/// The set of frequent itemsets of a context at some threshold, with their
/// absolute supports.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FrequentItemsets {
    map: HashMap<Itemset, Support>,
    /// Absolute threshold the mining ran with.
    pub min_count: Support,
    /// Number of objects in the mined context.
    pub n_objects: usize,
    /// Miner bookkeeping.
    pub stats: MiningStats,
}

impl FrequentItemsets {
    /// An empty result for a context of `n_objects` objects.
    pub fn new(min_count: Support, n_objects: usize) -> Self {
        FrequentItemsets {
            map: HashMap::new(),
            min_count,
            n_objects,
            stats: MiningStats::default(),
        }
    }

    /// Records an itemset with its support. Re-inserting must agree.
    pub fn insert(&mut self, itemset: Itemset, support: Support) {
        debug_assert!(
            support >= self.min_count,
            "inserting infrequent itemset {itemset:?}"
        );
        if let Some(prev) = self.map.insert(itemset, support) {
            debug_assert_eq!(prev, support, "conflicting supports");
        }
    }

    /// Number of frequent itemsets (the empty set is not stored).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no itemset is frequent.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Support of `itemset`, if frequent.
    pub fn support(&self, itemset: &Itemset) -> Option<Support> {
        self.map.get(itemset).copied()
    }

    /// Relative support of `itemset`, if frequent.
    pub fn frequency(&self, itemset: &Itemset) -> Option<f64> {
        self.support(itemset)
            .map(|s| s as f64 / self.n_objects.max(1) as f64)
    }

    /// Membership test.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        self.map.contains_key(itemset)
    }

    /// Iterates in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, Support)> {
        self.map.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates in canonical order (size, then lexicographic) — for
    /// deterministic output.
    pub fn iter_sorted(&self) -> Vec<(&Itemset, Support)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// Number of frequent itemsets of each size, indexed by size
    /// (`result[0]` unused, kept 0).
    pub fn level_counts(&self) -> Vec<usize> {
        let max = self.map.keys().map(Itemset::len).max().unwrap_or(0);
        let mut counts = vec![0usize; max + 1];
        for k in self.map.keys() {
            counts[k.len()] += 1;
        }
        counts
    }

    /// The maximal frequent itemsets (no frequent proper superset).
    pub fn maximal(&self) -> Vec<&Itemset> {
        let sets: Vec<&Itemset> = self.map.keys().collect();
        sets.iter()
            .copied()
            .filter(|s| !sets.iter().any(|other| s.is_proper_subset_of(other)))
            .collect()
    }

    /// Consumes the result into a sorted vector.
    pub fn into_sorted_vec(self) -> Vec<(Itemset, Support)> {
        let mut v: Vec<_> = self.map.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

impl FromIterator<(Itemset, Support)> for FrequentItemsets {
    fn from_iter<T: IntoIterator<Item = (Itemset, Support)>>(iter: T) -> Self {
        let map: HashMap<Itemset, Support> = iter.into_iter().collect();
        FrequentItemsets {
            min_count: map.values().copied().min().unwrap_or(1),
            n_objects: 0,
            map,
            stats: MiningStats::default(),
        }
    }
}

/// The frequent **closed** itemsets `FC` of a context, with supports.
///
/// Stored sorted canonically (size, then lexicographic); lookup by exact
/// set is O(1), and [`ClosedItemsets::closure_of`] finds the smallest
/// closed superset — which is exactly `h(X)` when the collection holds all
/// frequent closed itemsets and `X` is frequent.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ClosedItemsets {
    sets: Vec<(Itemset, Support)>,
    #[serde(skip)]
    index: HashMap<Itemset, usize>,
    /// Absolute threshold the mining ran with.
    pub min_count: Support,
    /// Number of objects in the mined context.
    pub n_objects: usize,
    /// Miner bookkeeping.
    pub stats: MiningStats,
}

impl ClosedItemsets {
    /// Builds from `(closed itemset, support)` pairs; deduplicates and
    /// sorts canonically.
    ///
    /// # Panics
    ///
    /// Panics if the same itemset appears with two different supports.
    pub fn from_pairs(
        pairs: Vec<(Itemset, Support)>,
        min_count: Support,
        n_objects: usize,
    ) -> Self {
        let mut sets = pairs;
        sets.sort_by(|a, b| a.0.cmp(&b.0));
        sets.dedup_by(|a, b| {
            if a.0 == b.0 {
                assert_eq!(a.1, b.1, "conflicting supports for {:?}", a.0);
                true
            } else {
                false
            }
        });
        let index = sets
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (s.clone(), i))
            .collect();
        ClosedItemsets {
            sets,
            index,
            min_count,
            n_objects,
            stats: MiningStats::default(),
        }
    }

    /// Rebuilds the exact-match index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .sets
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (s.clone(), i))
            .collect();
    }

    /// Number of closed itemsets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Iterates in canonical order (size, then lexicographic).
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, Support)> {
        self.sets.iter().map(|(s, sup)| (s, *sup))
    }

    /// The `i`-th closed itemset in canonical order.
    pub fn get(&self, i: usize) -> (&Itemset, Support) {
        let (s, sup) = &self.sets[i];
        (s, *sup)
    }

    /// Index of an exactly matching closed itemset.
    pub fn position(&self, itemset: &Itemset) -> Option<usize> {
        self.index.get(itemset).copied()
    }

    /// Whether `itemset` is one of the closed itemsets.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        self.index.contains_key(itemset)
    }

    /// Support of an exactly matching closed itemset.
    pub fn support_of_closed(&self, itemset: &Itemset) -> Option<Support> {
        self.position(itemset).map(|i| self.sets[i].1)
    }

    /// The smallest closed superset of `itemset` — i.e. `h(itemset)` when
    /// the collection is the full `FC` and `itemset` is frequent.
    ///
    /// Returns `None` when no closed superset exists (the itemset is
    /// infrequent at this threshold).
    pub fn closure_of(&self, itemset: &Itemset) -> Option<(&Itemset, Support)> {
        // Canonical order sorts by size first, so the first superset found
        // is a smallest one; by uniqueness of the closure it is h(itemset).
        if let Some(i) = self.position(itemset) {
            let (s, sup) = &self.sets[i];
            return Some((s, *sup));
        }
        self.sets
            .iter()
            .find(|(s, _)| itemset.is_subset_of(s))
            .map(|(s, sup)| (s, *sup))
    }

    /// Support of any frequent itemset, via its closure.
    pub fn support(&self, itemset: &Itemset) -> Option<Support> {
        self.closure_of(itemset).map(|(_, sup)| sup)
    }

    /// The maximal closed itemsets (= maximal frequent itemsets, as the
    /// paper notes).
    pub fn maximal(&self) -> Vec<&Itemset> {
        self.sets
            .iter()
            .map(|(s, _)| s)
            .filter(|s| {
                !self
                    .sets
                    .iter()
                    .any(|(other, _)| s.is_proper_subset_of(other))
            })
            .collect()
    }

    /// Consumes into the sorted `(itemset, support)` vector.
    pub fn into_sorted_vec(self) -> Vec<(Itemset, Support)> {
        self.sets
    }

    /// Expands `FC` into the full set of frequent itemsets with supports:
    /// every subset of a closed itemset is frequent with the support of its
    /// closure (the generating-set property of Definition 1).
    ///
    /// Exponential in the size of the largest closed set — meant for tests
    /// and small/medium contexts; large-scale counting should use a
    /// frequent miner directly.
    pub fn expand_to_frequent(&self) -> FrequentItemsets {
        let mut out = FrequentItemsets::new(self.min_count, self.n_objects);
        let mut best: HashMap<Itemset, Support> = HashMap::new();
        for (closed, support) in self.iter() {
            assert!(
                closed.len() < 64,
                "closed itemset too large to expand ({} items)",
                closed.len()
            );
            for sub in closed.proper_subsets() {
                let entry = best.entry(sub).or_insert(0);
                *entry = (*entry).max(support);
            }
            let entry = best.entry(closed.clone()).or_insert(0);
            *entry = (*entry).max(support);
        }
        best.remove(&Itemset::empty());
        for (set, support) in best {
            out.insert(set, support);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    /// FC of the paper's running example at minsup 2/5:
    /// C(4), AC(3), BE(4), BCE(3), ACD is infrequent at count 2? supp=1 —
    /// excluded; ABCE(2).
    fn paper_fc() -> ClosedItemsets {
        ClosedItemsets::from_pairs(
            vec![
                (set(&[3]), 4),
                (set(&[1, 3]), 3),
                (set(&[2, 5]), 4),
                (set(&[2, 3, 5]), 3),
                (set(&[1, 2, 3, 5]), 2),
            ],
            2,
            5,
        )
    }

    #[test]
    fn frequent_container_basics() {
        let mut f = FrequentItemsets::new(2, 5);
        f.insert(set(&[1]), 3);
        f.insert(set(&[1, 3]), 3);
        f.insert(set(&[2]), 4);
        assert_eq!(f.len(), 3);
        assert_eq!(f.support(&set(&[1])), Some(3));
        assert_eq!(f.support(&set(&[9])), None);
        assert!(f.contains(&set(&[1, 3])));
        assert_eq!(f.frequency(&set(&[2])), Some(0.8));
        assert_eq!(f.level_counts(), vec![0, 2, 1]);
    }

    #[test]
    fn frequent_sorted_iteration_is_canonical() {
        let mut f = FrequentItemsets::new(1, 3);
        f.insert(set(&[2, 3]), 1);
        f.insert(set(&[9]), 2);
        f.insert(set(&[1, 5]), 1);
        let order: Vec<_> = f
            .iter_sorted()
            .into_iter()
            .map(|(s, _)| s.clone())
            .collect();
        assert_eq!(order, vec![set(&[9]), set(&[1, 5]), set(&[2, 3])]);
    }

    #[test]
    fn frequent_maximal() {
        let mut f = FrequentItemsets::new(1, 5);
        f.insert(set(&[1]), 3);
        f.insert(set(&[2]), 3);
        f.insert(set(&[1, 2]), 2);
        f.insert(set(&[3]), 2);
        let mut maxes: Vec<_> = f.maximal().into_iter().cloned().collect();
        maxes.sort();
        assert_eq!(maxes, vec![set(&[3]), set(&[1, 2])]);
    }

    #[test]
    fn closed_lookup_and_closure() {
        let fc = paper_fc();
        assert_eq!(fc.len(), 5);
        assert_eq!(fc.support_of_closed(&set(&[2, 5])), Some(4));
        assert_eq!(fc.support_of_closed(&set(&[2])), None);
        // h(B) = BE
        let (c, sup) = fc.closure_of(&set(&[2])).unwrap();
        assert_eq!(c, &set(&[2, 5]));
        assert_eq!(sup, 4);
        // h(AB) = ABCE
        let (c, sup) = fc.closure_of(&set(&[1, 2])).unwrap();
        assert_eq!(c, &set(&[1, 2, 3, 5]));
        assert_eq!(sup, 2);
        // support of any frequent itemset = support of closure
        assert_eq!(fc.support(&set(&[1])), Some(3));
        assert_eq!(fc.support(&set(&[4])), None); // D infrequent here
    }

    #[test]
    fn closed_maximal_sets() {
        let fc = paper_fc();
        let maxes = fc.maximal();
        assert_eq!(maxes, vec![&set(&[1, 2, 3, 5])]);
    }

    #[test]
    fn from_pairs_dedups_consistently() {
        let fc =
            ClosedItemsets::from_pairs(vec![(set(&[1]), 3), (set(&[1]), 3), (set(&[2]), 2)], 2, 5);
        assert_eq!(fc.len(), 2);
    }

    #[test]
    #[should_panic(expected = "conflicting supports")]
    fn from_pairs_rejects_conflicts() {
        let _ = ClosedItemsets::from_pairs(vec![(set(&[1]), 3), (set(&[1]), 2)], 1, 5);
    }

    #[test]
    fn expand_to_frequent_covers_all_subsets() {
        let fc = paper_fc();
        let f = fc.expand_to_frequent();
        // The paper example has 15 frequent itemsets at minsup 2:
        // A,B,C,E, AB,AC,AE,BC,BE,CE, ABC,ABE,ACE,BCE, ABCE.
        assert_eq!(f.len(), 15);
        assert_eq!(f.support(&set(&[1])), Some(3)); // supp(A) = supp(AC)
        assert_eq!(f.support(&set(&[5])), Some(4)); // supp(E) = supp(BE)
        assert_eq!(f.support(&set(&[1, 5])), Some(2)); // supp(AE) = supp(ABCE)
        assert_eq!(f.support(&set(&[2, 3])), Some(3)); // supp(BC) = supp(BCE)
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let fc = paper_fc();
        let json = serde_json::to_string(&fc).unwrap();
        let mut back: ClosedItemsets = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 5);
        // Exact lookups need the index rebuilt.
        back.rebuild_index();
        assert_eq!(back.support_of_closed(&set(&[2, 5])), Some(4));
    }
}
