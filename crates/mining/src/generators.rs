//! Minimal generators (key itemsets).
//!
//! An itemset `G` is a (minimal) *generator* iff no proper subset has the
//! same support — equivalently, `G` is a minimal element of its closure
//! class `{X | h(X) = h(G)}`. Generators are what A-Close mines levelwise,
//! and what the generic/informative rule bases (the B00 extension) use
//! as minimal antecedents.

use crate::candidates::join_and_prune;
use crate::itemsets::{ClosedItemsets, MiningStats};
use rulebases_dataset::{Itemset, MiningContext, Support, SupportEngine};
use std::collections::HashMap;

/// The frequent minimal generators of a context at a threshold.
#[derive(Clone, Debug, Default)]
pub struct GeneratorSet {
    /// `(generator, support)`, canonically sorted.
    pairs: Vec<(Itemset, Support)>,
    /// Absolute threshold used.
    pub min_count: Support,
    /// Number of objects in the mined context.
    pub n_objects: usize,
    /// Miner bookkeeping.
    pub stats: MiningStats,
}

impl GeneratorSet {
    /// Number of generators (the empty set, which generates the lattice
    /// bottom, is always included when the context is non-empty).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no generators.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates `(generator, support)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, Support)> {
        self.pairs.iter().map(|(g, s)| (g, *s))
    }

    /// Whether `itemset` is a minimal generator.
    pub fn contains(&self, itemset: &Itemset) -> bool {
        self.pairs.binary_search_by(|(g, _)| g.cmp(itemset)).is_ok()
    }

    /// Groups generators by their closure, using `fc` for closure lookup.
    ///
    /// Returns, for each closed itemset index in `fc`, the list of its
    /// minimal generators.
    pub fn by_closure(&self, fc: &ClosedItemsets) -> Vec<Vec<&Itemset>> {
        let mut grouped: Vec<Vec<&Itemset>> = vec![Vec::new(); fc.len()];
        for (g, _) in self.iter() {
            let (closure, _) = fc
                .closure_of(g)
                .unwrap_or_else(|| panic!("generator {g:?} has no closure in FC"));
            let idx = fc.position(closure).expect("closure indexed");
            grouped[idx].push(g);
        }
        grouped
    }
}

/// Mines all frequent minimal generators levelwise (the first phase of
/// A-Close), through the context's (cached) engine.
///
/// The empty itemset is included as the generator of the lattice bottom.
pub fn mine_generators(ctx: &MiningContext, min_count: Support) -> GeneratorSet {
    mine_generators_engine(ctx.engine(), min_count)
}

/// Mines all frequent minimal generators from any [`SupportEngine`].
///
/// Candidate levels are counted through the engine's batch
/// [`SupportEngine::count_candidates`] API.
pub fn mine_generators_engine(engine: &dyn SupportEngine, min_count: Support) -> GeneratorSet {
    let n = engine.n_objects();
    let mut stats = MiningStats::default();
    if n == 0 {
        return GeneratorSet::default();
    }
    // ∅ generates the lattice bottom; it is frequent unless the
    // threshold exceeds |O|.
    let mut pairs: Vec<(Itemset, Support)> = if n as Support >= min_count {
        vec![(Itemset::empty(), n as Support)]
    } else {
        Vec::new()
    };

    // Level 1: a frequent singleton is a generator unless its support
    // equals |O| (then it belongs to the bottom's closure class, generated
    // by ∅).
    stats.db_passes += 1;
    let item_supports = engine.item_supports();
    stats.candidates_counted += item_supports.len();
    let mut level: Vec<(Itemset, Support)> = Vec::new();
    for (i, &support) in item_supports.iter().enumerate() {
        if support >= min_count && support < n as Support {
            level.push((Itemset::from_ids([i as u32]), support));
        }
    }
    pairs.extend(level.iter().cloned());

    // Levels k >= 2.
    while level.len() >= 2 {
        let supports: HashMap<&Itemset, Support> = level.iter().map(|(g, s)| (g, *s)).collect();
        let sets: Vec<Itemset> = level.iter().map(|(g, _)| g.clone()).collect();
        let candidates = join_and_prune(&sets);
        if candidates.is_empty() {
            break;
        }
        stats.db_passes += 1;
        stats.candidates_counted += candidates.len();
        let counts = engine.count_candidates(&candidates);
        let mut next: Vec<(Itemset, Support)> = Vec::new();
        for (candidate, support) in candidates.into_iter().zip(counts) {
            if support < min_count {
                continue;
            }
            // Generator test: support strictly below every facet's.
            let is_generator = candidate
                .facets()
                .all(|facet| supports.get(&facet).is_some_and(|&fs| fs != support));
            if is_generator {
                next.push((candidate, support));
            }
        }
        pairs.extend(next.iter().cloned());
        level = next;
    }

    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    GeneratorSet {
        pairs,
        min_count,
        n_objects: n,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close::Close;
    use crate::traits::ClosedMiner;
    use rulebases_dataset::{paper_example, MinSupport};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn paper_example_generators() {
        let ctx = MiningContext::new(paper_example());
        let gens = mine_generators(&ctx, 2);
        // Closure classes at minsup 2:
        //   ∅→∅, {C}→C, {A}→AC, {B},{E}→BE, {BC},{CE}→BCE,
        //   {AB},{AE}→ABCE.
        let expected = vec![
            Itemset::empty(),
            set(&[1]),
            set(&[2]),
            set(&[3]),
            set(&[5]),
            set(&[1, 2]),
            set(&[1, 5]),
            set(&[2, 3]),
            set(&[3, 5]),
        ];
        let got: Vec<Itemset> = gens.iter().map(|(g, _)| g.clone()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn generator_supports_are_correct() {
        let ctx = MiningContext::new(paper_example());
        let gens = mine_generators(&ctx, 2);
        for (g, s) in gens.iter() {
            assert_eq!(ctx.support(g), s, "{g:?}");
        }
    }

    #[test]
    fn no_generator_has_equal_support_subset() {
        let ctx = MiningContext::new(paper_example());
        let gens = mine_generators(&ctx, 1);
        for (g, s) in gens.iter() {
            for facet in g.facets() {
                assert_ne!(ctx.support(&facet), s, "{g:?} not minimal");
            }
        }
    }

    #[test]
    fn by_closure_groups_match() {
        let ctx = MiningContext::new(paper_example());
        let fc = Close::new().mine_closed(&ctx, MinSupport::Count(2));
        let gens = mine_generators(&ctx, 2);
        let grouped = gens.by_closure(&fc);
        // BE (index of {2,5}) is generated by {B} and {E}.
        let be_idx = fc.position(&set(&[2, 5])).unwrap();
        let mut be_gens: Vec<_> = grouped[be_idx].iter().map(|g| (*g).clone()).collect();
        be_gens.sort();
        assert_eq!(be_gens, vec![set(&[2]), set(&[5])]);
        // Every closed set has at least one generator.
        for (i, group) in grouped.iter().enumerate() {
            assert!(!group.is_empty(), "closed #{i} has no generator");
        }
    }

    #[test]
    fn contains_lookup() {
        let ctx = MiningContext::new(paper_example());
        let gens = mine_generators(&ctx, 2);
        assert!(gens.contains(&set(&[2])));
        assert!(!gens.contains(&set(&[2, 5]))); // closed, not a generator
        assert!(gens.contains(&Itemset::empty()));
    }

    #[test]
    fn empty_context_has_no_generators() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert!(mine_generators(&ctx, 1).is_empty());
    }
}
