//! The FP-growth algorithm (Han, Pei, Yin — SIGMOD 2000).
//!
//! The pattern-growth baseline that displaced Apriori right after the
//! paper's era: transactions are compressed into a prefix tree (FP-tree)
//! ordered by descending item frequency, and frequent itemsets grow by
//! recursing into *conditional* trees — no candidate generation, two
//! database passes total. Included as the modern `|F|` miner for the
//! benchmark comparisons and as a third independent implementation to
//! cross-check Apriori and the closed-set expansion.

use crate::itemsets::{FrequentItemsets, MiningStats};
use crate::traits::FrequentMiner;
use rulebases_dataset::{Item, Itemset, MinSupport, MiningContext, Support};
use std::collections::HashMap;

/// The FP-growth frequent-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct FpGrowth;

/// One FP-tree node, stored in an arena.
struct Node {
    item: Item,
    count: Support,
    parent: usize,
    /// Next node carrying the same item (header-list chaining).
    next: Option<usize>,
    children: Vec<usize>,
}

/// An FP-tree: arena of nodes plus per-item header chains.
struct Tree {
    nodes: Vec<Node>,
    /// item → (first node in chain, total count).
    headers: HashMap<Item, (usize, Support)>,
}

const ROOT: usize = 0;

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node {
                item: Item::new(u32::MAX),
                count: 0,
                parent: ROOT,
                next: None,
                children: Vec::new(),
            }],
            headers: HashMap::new(),
        }
    }

    /// Inserts one (filtered, frequency-ordered) transaction with a count.
    fn insert(&mut self, items: &[Item], count: Support) {
        let mut current = ROOT;
        for &item in items {
            let found = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            current = match found {
                Some(child) => {
                    self.nodes[child].count += count;
                    child
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        count,
                        parent: current,
                        next: None,
                        children: Vec::new(),
                    });
                    self.nodes[current].children.push(idx);
                    // Chain into the header list.
                    match self.headers.get_mut(&item) {
                        Some((first, _)) => {
                            self.nodes[idx].next = Some(*first);
                            *first = idx;
                        }
                        None => {
                            self.headers.insert(item, (idx, 0));
                        }
                    }
                    idx
                }
            };
            self.headers
                .get_mut(&item)
                .expect("header exists after insert")
                .1 += count;
        }
    }

    /// Items of the tree sorted by ascending total count (the mining
    /// order), ties broken by item id for determinism.
    fn items_ascending(&self) -> Vec<Item> {
        let mut items: Vec<(Item, Support)> =
            self.headers.iter().map(|(&i, &(_, c))| (i, c)).collect();
        items.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        items.into_iter().map(|(i, _)| i).collect()
    }

    /// The prefix path of `node` (excluding the node itself), root-first.
    fn prefix_path(&self, mut node: usize) -> Vec<Item> {
        let mut path = Vec::new();
        node = self.nodes[node].parent;
        while node != ROOT {
            path.push(self.nodes[node].item);
            node = self.nodes[node].parent;
        }
        path.reverse();
        path
    }
}

impl FpGrowth {
    /// Creates an FP-growth miner.
    pub fn new() -> Self {
        FpGrowth
    }

    /// Mines all frequent itemsets of `ctx` at `minsup`.
    pub fn mine(&self, ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets {
        let n = ctx.n_objects();
        if n == 0 {
            return FrequentItemsets::new(1, 0);
        }
        let min_count = ctx.min_support_count(minsup);
        let mut result = FrequentItemsets::new(min_count, n);
        let mut stats = MiningStats::default();

        // Pass 1: item frequencies; global descending-frequency order.
        stats.db_passes += 1;
        let supports = ctx.engine().item_supports();
        stats.candidates_counted += supports.len();
        let mut rank: HashMap<Item, usize> = HashMap::new();
        {
            let mut frequent: Vec<(Item, Support)> = supports
                .iter()
                .enumerate()
                .filter(|(_, &s)| s >= min_count)
                .map(|(i, &s)| (Item::new(i as u32), s))
                .collect();
            // Descending frequency, ascending id on ties.
            frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for (pos, (item, _)) in frequent.iter().enumerate() {
                rank.insert(*item, pos);
            }
        }

        // Pass 2: build the global FP-tree.
        stats.db_passes += 1;
        let mut tree = Tree::new();
        let mut row: Vec<Item> = Vec::new();
        for t in ctx.horizontal().iter() {
            row.clear();
            row.extend(t.iter().copied().filter(|i| rank.contains_key(i)));
            row.sort_by_key(|i| rank[i]);
            if !row.is_empty() {
                tree.insert(&row, 1);
            }
        }

        // Recursive pattern growth.
        let mut suffix: Vec<Item> = Vec::new();
        Self::grow(&tree, min_count, &mut suffix, &mut result, &mut stats);
        result.stats = stats;
        result
    }

    fn grow(
        tree: &Tree,
        min_count: Support,
        suffix: &mut Vec<Item>,
        out: &mut FrequentItemsets,
        stats: &mut MiningStats,
    ) {
        for item in tree.items_ascending() {
            let (first, total) = tree.headers[&item];
            if total < min_count {
                continue;
            }
            suffix.push(item);
            out.insert(Itemset::from_items(suffix.iter().copied()), total);
            stats.candidates_counted += 1;

            // Conditional pattern base → conditional tree.
            let mut conditional = Tree::new();
            let mut node = Some(first);
            let mut base: Vec<(Vec<Item>, Support)> = Vec::new();
            let mut cond_counts: HashMap<Item, Support> = HashMap::new();
            while let Some(idx) = node {
                let count = tree.nodes[idx].count;
                let path = tree.prefix_path(idx);
                for &p in &path {
                    *cond_counts.entry(p).or_insert(0) += count;
                }
                if !path.is_empty() {
                    base.push((path, count));
                }
                node = tree.nodes[idx].next;
            }
            for (path, count) in base {
                // Keep only conditionally frequent items; the path is
                // already in global frequency order, which is a valid
                // (fixed) order for the conditional tree too.
                let filtered: Vec<Item> = path
                    .into_iter()
                    .filter(|p| cond_counts[p] >= min_count)
                    .collect();
                if !filtered.is_empty() {
                    conditional.insert(&filtered, count);
                }
            }
            if !conditional.headers.is_empty() {
                Self::grow(&conditional, min_count, suffix, out, stats);
            }
            suffix.pop();
        }
    }
}

impl FrequentMiner for FpGrowth {
    fn name(&self) -> &'static str {
        "fp-growth"
    }

    fn mine_frequent(&self, ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets {
        self.mine(ctx, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_frequent;
    use rulebases_dataset::{paper_example, TransactionDb};

    fn assert_matches_brute(db: TransactionDb, min_count: u64) {
        let ctx = MiningContext::new(db);
        let brute = brute_frequent(&ctx, MinSupport::Count(min_count));
        let fp = FpGrowth::new().mine(&ctx, MinSupport::Count(min_count));
        assert_eq!(fp.len(), brute.len(), "cardinality at minsup {min_count}");
        for (set, support) in brute.iter() {
            assert_eq!(fp.support(set), Some(support), "{set:?}");
        }
    }

    #[test]
    fn paper_example_all_thresholds() {
        for min_count in 1..=5 {
            assert_matches_brute(paper_example(), min_count);
        }
    }

    #[test]
    fn single_path_tree() {
        // All transactions identical: the FP-tree is one path.
        assert_matches_brute(TransactionDb::from_rows(vec![vec![1, 2, 3]; 4]), 2);
    }

    #[test]
    fn disjoint_transactions() {
        assert_matches_brute(
            TransactionDb::from_rows(vec![vec![0], vec![1], vec![2], vec![0]]),
            1,
        );
    }

    #[test]
    fn shared_prefixes_and_ties() {
        assert_matches_brute(
            TransactionDb::from_rows(vec![
                vec![1, 2, 3, 4],
                vec![1, 2, 4],
                vec![1, 3],
                vec![2, 3],
                vec![1, 2, 3],
                vec![4],
            ]),
            2,
        );
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(TransactionDb::from_rows(vec![]));
        assert!(FpGrowth::new().mine(&ctx, MinSupport::Count(1)).is_empty());
    }

    #[test]
    fn two_passes_regardless_of_depth() {
        let ctx = MiningContext::new(paper_example());
        let f = FpGrowth::new().mine(&ctx, MinSupport::Count(1));
        assert_eq!(f.stats.db_passes, 2);
    }
}
