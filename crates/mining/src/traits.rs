//! Miner traits and algorithm selection.

use crate::aclose::AClose;
use crate::charm::Charm;
use crate::close::Close;
use crate::itemsets::{ClosedItemsets, FrequentItemsets, MiningStats};
use crate::sink::ClosedSink;
use rulebases_dataset::{MinSupport, MiningContext, Parallelism, SupportEngine};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A miner producing all frequent itemsets.
pub trait FrequentMiner {
    /// Stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;
    /// Mines the frequent itemsets of `ctx` at `minsup`.
    fn mine_frequent(&self, ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets;
}

/// A miner producing the frequent closed itemsets `FC`.
pub trait ClosedMiner {
    /// Stable identifier for reports and benchmarks.
    fn name(&self) -> &'static str;
    /// Mines the frequent closed itemsets of `ctx` at `minsup`.
    fn mine_closed(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets;
}

/// Which closed-itemset algorithm to run — the paper's two (Close,
/// A-Close) plus the CHARM cross-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClosedAlgorithm {
    /// Levelwise generators with per-level closures (Pasquier et al. 1999).
    #[default]
    Close,
    /// Levelwise minimal generators, closures at the end (ICDT'99).
    AClose,
    /// Vertical IT-tree search (Zaki & Hsiao).
    Charm,
}

impl ClosedAlgorithm {
    /// All algorithm variants, for exhaustive testing and benchmarking.
    pub const ALL: [ClosedAlgorithm; 3] = [
        ClosedAlgorithm::Close,
        ClosedAlgorithm::AClose,
        ClosedAlgorithm::Charm,
    ];

    /// Runs the selected algorithm through the context's (cached) engine.
    pub fn mine(self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine_engine(ctx.engine(), minsup)
    }

    /// Runs the selected algorithm against any [`SupportEngine`] backend —
    /// the (algorithm × representation) ablation entry point — under the
    /// default ([`Parallelism::Auto`]) thread policy.
    pub fn mine_engine(self, engine: &dyn SupportEngine, minsup: MinSupport) -> ClosedItemsets {
        self.mine_engine_par(engine, minsup, Parallelism::default())
    }

    /// Runs the selected algorithm against any [`SupportEngine`] backend
    /// under an explicit thread policy. CHARM's IT-tree search is
    /// inherently sequential and ignores the policy (a sharded engine
    /// still parallelizes its queries internally).
    pub fn mine_engine_par(
        self,
        engine: &dyn SupportEngine,
        minsup: MinSupport,
        parallelism: Parallelism,
    ) -> ClosedItemsets {
        match self {
            ClosedAlgorithm::Close => Close::new()
                .parallelism(parallelism)
                .mine_engine(engine, minsup),
            ClosedAlgorithm::AClose => AClose::new()
                .parallelism(parallelism)
                .mine_engine(engine, minsup),
            ClosedAlgorithm::Charm => Charm::new().mine_engine(engine, minsup),
        }
    }

    /// Runs the selected algorithm against any [`SupportEngine`] backend
    /// under an explicit thread policy, streaming every discovered closed
    /// set into `sink` instead of materializing a container — the entry
    /// point of the fused pipeline. Returns the miner's bookkeeping.
    pub fn mine_sink_par(
        self,
        engine: &dyn SupportEngine,
        minsup: MinSupport,
        parallelism: Parallelism,
        sink: &mut dyn ClosedSink,
    ) -> MiningStats {
        match self {
            ClosedAlgorithm::Close => Close::new()
                .parallelism(parallelism)
                .mine_engine_sink(engine, minsup, sink),
            ClosedAlgorithm::AClose => AClose::new()
                .parallelism(parallelism)
                .mine_engine_sink(engine, minsup, sink),
            ClosedAlgorithm::Charm => Charm::new().mine_engine_sink(engine, minsup, sink),
        }
    }

    /// Stable identifier.
    pub fn name(self) -> &'static str {
        match self {
            ClosedAlgorithm::Close => "close",
            ClosedAlgorithm::AClose => "a-close",
            ClosedAlgorithm::Charm => "charm",
        }
    }
}

impl fmt::Display for ClosedAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;

    #[test]
    fn all_algorithms_agree_via_enum() {
        let ctx = MiningContext::new(paper_example());
        let reference = ClosedAlgorithm::Close.mine(&ctx, MinSupport::Count(2));
        for algo in ClosedAlgorithm::ALL {
            let fc = algo.mine(&ctx, MinSupport::Count(2));
            assert_eq!(
                fc.into_sorted_vec(),
                reference.clone().into_sorted_vec(),
                "{algo}"
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ClosedAlgorithm::Close.to_string(), "close");
        assert_eq!(ClosedAlgorithm::AClose.to_string(), "a-close");
        assert_eq!(ClosedAlgorithm::Charm.to_string(), "charm");
    }
}
