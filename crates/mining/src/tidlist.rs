//! Sparse tid-lists: the paper-era vertical representation.
//!
//! Before dense bitsets became the default, vertical miners (Eclat,
//! CHARM) stored each item's cover as a sorted list of transaction ids.
//! Tid-lists win when covers are *sparse* (intersection cost scales with
//! the cover sizes, not with `|O|/64` words); bitsets win on dense
//! covers. [`TidListDb`] mirrors [`rulebases_dataset::VerticalDb`]'s API
//! so the two representations can be ablated against each other (bench
//! `counting`, EXPERIMENTS E8).

use rulebases_dataset::{Item, Itemset, Support, TransactionDb};

/// A sorted list of transaction ids.
pub type TidList = Vec<u32>;

/// Per-item sparse covers.
#[derive(Clone, Debug)]
pub struct TidListDb {
    covers: Vec<TidList>,
    n_objects: usize,
}

/// Intersects two sorted tid-lists.
pub fn intersect(a: &[u32], b: &[u32]) -> TidList {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Size of the intersection of two sorted tid-lists, without
/// materializing it.
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

impl TidListDb {
    /// Transposes a horizontal database into sorted tid-lists.
    pub fn from_horizontal(db: &TransactionDb) -> Self {
        let mut covers = vec![Vec::new(); db.n_items()];
        for (t, row) in db.iter().enumerate() {
            for &item in row {
                covers[item.index()].push(t as u32);
            }
        }
        // Rows are visited in ascending tid order, so lists are sorted.
        TidListDb {
            covers,
            n_objects: db.n_transactions(),
        }
    }

    /// Number of objects `|O|`.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> usize {
        self.covers.len()
    }

    /// The tid-list of one item (empty for out-of-universe items).
    pub fn cover(&self, item: Item) -> &[u32] {
        self.covers
            .get(item.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The extent of an itemset as a tid-list (all tids for ∅).
    pub fn extent(&self, itemset: &Itemset) -> TidList {
        let mut items = itemset.iter();
        let Some(first) = items.next() else {
            return (0..self.n_objects as u32).collect();
        };
        let mut acc = self.cover(first).to_vec();
        for item in items {
            if acc.is_empty() {
                break;
            }
            acc = intersect(&acc, self.cover(item));
        }
        acc
    }

    /// Absolute support via tid-list intersections.
    pub fn support(&self, itemset: &Itemset) -> Support {
        let mut items = itemset.iter();
        let Some(first) = items.next() else {
            return self.n_objects as Support;
        };
        let Some(second) = items.next() else {
            return self.cover(first).len() as Support;
        };
        let mut acc = intersect(self.cover(first), self.cover(second));
        for item in items {
            if acc.is_empty() {
                return 0;
            }
            acc = intersect(&acc, self.cover(item));
        }
        acc.len() as Support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;

    #[test]
    fn intersection_basics() {
        assert_eq!(intersect(&[1, 3, 5], &[2, 3, 5, 9]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect_count(&[1, 3, 5], &[2, 3, 5, 9]), 2);
        assert_eq!(intersect_count(&[1, 2], &[3, 4]), 0);
    }

    #[test]
    fn matches_bitset_vertical_on_paper_example() {
        let db = paper_example();
        let bitsets = rulebases_dataset::VerticalDb::from_horizontal(&db);
        let tids = TidListDb::from_horizontal(&db);
        assert_eq!(tids.n_objects(), bitsets.n_objects());
        for i in 0..db.n_items() as u32 {
            let item = Item::new(i);
            let from_bits: Vec<u32> = bitsets.cover(item).iter().map(|t| t as u32).collect();
            assert_eq!(tids.cover(item), from_bits.as_slice(), "item {i}");
        }
        for ids in [vec![], vec![2], vec![2, 5], vec![1, 2, 3, 5], vec![1, 4, 5]] {
            let set = Itemset::from_ids(ids);
            assert_eq!(tids.support(&set), bitsets.support(&set), "{set:?}");
            let from_bits: Vec<u32> =
                bitsets.extent(&set).iter().map(|t| t as u32).collect();
            assert_eq!(tids.extent(&set), from_bits, "{set:?}");
        }
    }

    #[test]
    fn out_of_universe_items_are_unsupported() {
        let tids = TidListDb::from_horizontal(&paper_example());
        assert_eq!(tids.support(&Itemset::from_ids([99])), 0);
        assert!(tids.cover(Item::new(99)).is_empty());
    }

    #[test]
    fn empty_database() {
        let tids =
            TidListDb::from_horizontal(&TransactionDb::from_rows(vec![]));
        assert_eq!(tids.n_objects(), 0);
        assert_eq!(tids.support(&Itemset::empty()), 0);
        assert!(tids.extent(&Itemset::empty()).is_empty());
    }

    #[test]
    fn lists_are_sorted() {
        let tids = TidListDb::from_horizontal(&paper_example());
        for i in 0..tids.n_items() as u32 {
            let cover = tids.cover(Item::new(i));
            assert!(cover.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
