//! Brute-force reference miners.
//!
//! Exponential-time oracles used by the test suites (including the
//! cross-crate property tests) to validate every real miner on small
//! random contexts. They enumerate the frequent itemsets by depth-first
//! extent refinement — simple enough to be obviously correct.

use crate::itemsets::{ClosedItemsets, FrequentItemsets};
use rulebases_dataset::{BitSet, Itemset, MinSupport, MiningContext, Support};

/// Enumerates **all** frequent itemsets by DFS over the item order,
/// pruning on extent size.
pub fn brute_frequent(ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets {
    let n = ctx.n_objects();
    if n == 0 {
        return FrequentItemsets::new(1, 0);
    }
    let min_count = ctx.min_support_count(minsup);
    let mut result = FrequentItemsets::new(min_count, n);
    let full = BitSet::full(n);
    let mut prefix = Vec::new();
    dfs(ctx, &full, 0, min_count, &mut prefix, &mut result);
    result
}

fn dfs(
    ctx: &MiningContext,
    extent: &BitSet,
    next_item: usize,
    min_count: Support,
    prefix: &mut Vec<u32>,
    out: &mut FrequentItemsets,
) {
    for i in next_item..ctx.n_items() {
        let refined = ctx
            .engine()
            .extend_tidset(extent, rulebases_dataset::Item::new(i as u32));
        let support = refined.count() as Support;
        if support < min_count {
            continue;
        }
        prefix.push(i as u32);
        out.insert(Itemset::from_ids(prefix.iter().copied()), support);
        dfs(ctx, &refined, i + 1, min_count, prefix, out);
        prefix.pop();
    }
}

/// Enumerates all frequent **closed** itemsets by filtering
/// [`brute_frequent`] through the closure test, and adds the lattice
/// bottom `h(∅)` (for consistency with the real closed miners).
pub fn brute_closed(ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
    let n = ctx.n_objects();
    if n == 0 {
        return ClosedItemsets::from_pairs(Vec::new(), 1, 0);
    }
    let min_count = ctx.min_support_count(minsup);
    let mut pairs: Vec<(Itemset, Support)> = brute_frequent(ctx, minsup)
        .iter()
        .filter(|(s, _)| ctx.is_closed(s))
        .map(|(s, sup)| (s.clone(), sup))
        .collect();
    // The bottom h(∅) is frequent unless the threshold exceeds |O|.
    if n as Support >= min_count {
        pairs.push((ctx.closure(&Itemset::empty()), n as Support));
    }
    ClosedItemsets::from_pairs(pairs, min_count, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::Apriori;
    use crate::close::Close;
    use rulebases_dataset::paper_example;

    #[test]
    fn brute_frequent_matches_apriori() {
        let ctx = MiningContext::new(paper_example());
        for count in 1..=5u64 {
            let brute = brute_frequent(&ctx, MinSupport::Count(count));
            let apriori = Apriori::new().mine(&ctx, MinSupport::Count(count));
            assert_eq!(brute.len(), apriori.len(), "minsup {count}");
            for (s, sup) in brute.iter() {
                assert_eq!(apriori.support(s), Some(sup), "{s:?}");
            }
        }
    }

    #[test]
    fn brute_closed_matches_close() {
        let ctx = MiningContext::new(paper_example());
        for count in 1..=5u64 {
            let brute = brute_closed(&ctx, MinSupport::Count(count));
            let close = Close::new().mine(&ctx, MinSupport::Count(count));
            assert_eq!(
                brute.into_sorted_vec(),
                close.into_sorted_vec(),
                "minsup {count}"
            );
        }
    }

    #[test]
    fn closed_count_never_exceeds_frequent_count() {
        let ctx = MiningContext::new(paper_example());
        let f = brute_frequent(&ctx, MinSupport::Count(2));
        let fc = brute_closed(&ctx, MinSupport::Count(2));
        // `fc` includes the (empty) bottom, which `f` does not store.
        assert!(fc.len() <= f.len() + 1);
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert!(brute_frequent(&ctx, MinSupport::Count(1)).is_empty());
        assert!(brute_closed(&ctx, MinSupport::Count(1)).is_empty());
    }
}
