//! A CHARM-style vertical closed-itemset miner (Zaki & Hsiao, SDM'02).
//!
//! CHARM is the best-known follow-on to Close/A-Close: it explores an
//! itemset-tidset (IT) tree depth-first, using four tidset properties to
//! jump straight between closure classes, and a subsumption hash to drop
//! non-closed candidates. Included as an independent cross-check of the
//! paper's miners and as the vertical-representation baseline in the
//! benchmark ablations.

use crate::itemsets::{ClosedItemsets, MiningStats};
use crate::sink::{ClosedSink, CollectSink};
use crate::traits::ClosedMiner;
use rulebases_dataset::{BitSet, Item, Itemset, MinSupport, MiningContext, Support, SupportEngine};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The CHARM frequent-closed-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Charm;

struct Node {
    set: Itemset,
    tidset: BitSet,
}

/// Closed candidates found so far, hashed by tidset for subsumption checks.
#[derive(Default)]
struct Collector {
    by_tidset_hash: HashMap<u64, Vec<usize>>,
    sets: Vec<(Itemset, Support)>,
}

impl Collector {
    fn tidset_hash(tidset: &BitSet) -> u64 {
        let mut h = DefaultHasher::new();
        tidset.hash(&mut h);
        h.finish()
    }

    /// Inserts `set`, resolving subsumption in **both** directions: if an
    /// already-found set with the same tidset subsumes `set`, the new set
    /// is not closed and is dropped; if `set` subsumes an earlier entry
    /// with the same tidset, that earlier entry was not closed and is
    /// replaced in place.
    ///
    /// Comparing `set ⊆/⊇ existing` under equal support is sound without
    /// materializing tidsets: for comparable itemsets the extents nest
    /// the opposite way, so equal support forces equal extents. CHARM's
    /// depth-first order (classes sorted by ascending support) happens to
    /// discover each closure class's full closure first, but the
    /// collector must not lean on that traversal invariant — a different
    /// emission order (a future parallel or streaming IT-tree walk) would
    /// otherwise silently report non-closed sets.
    fn insert(&mut self, set: Itemset, tidset: &BitSet) {
        let support = tidset.count() as Support;
        let key = Self::tidset_hash(tidset);
        let bucket = self.by_tidset_hash.entry(key).or_default();
        let mut replaced = false;
        for &idx in bucket.iter() {
            let (existing, existing_support) = &self.sets[idx];
            if *existing_support != support {
                continue;
            }
            if set.is_subset_of(existing) {
                return; // subsumed: not closed
            }
            if existing.is_subset_of(&set) {
                // The earlier entry is a proper subset with the same
                // extent — it was a premature partial closure. Replace it
                // (duplicates, if several partials accumulated, collapse
                // to identical entries and dedup downstream).
                self.sets[idx] = (set.clone(), support);
                replaced = true;
            }
        }
        if replaced {
            return;
        }
        bucket.push(self.sets.len());
        self.sets.push((set, support));
    }
}

impl Charm {
    /// Creates a CHARM miner.
    pub fn new() -> Self {
        Charm
    }

    /// Mines the frequent closed itemsets of `ctx` at `minsup`, through
    /// the context's (cached) engine.
    pub fn mine(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine_engine(ctx.engine(), minsup)
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`.
    ///
    /// Like the other closed miners, the result includes the lattice
    /// bottom `h(∅)`.
    pub fn mine_engine(&self, engine: &dyn SupportEngine, minsup: MinSupport) -> ClosedItemsets {
        let n = engine.n_objects();
        if n == 0 {
            return ClosedItemsets::from_pairs(Vec::new(), 1, 0);
        }
        let min_count = minsup.to_count(n);
        let mut sink = CollectSink::new();
        let stats = self.mine_engine_sink(engine, minsup, &mut sink);
        let mut result = sink.into_closed(min_count, n);
        result.stats = stats;
        result
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`, streaming the result into `sink`.
    ///
    /// CHARM's subsumption check can retract a candidate after it was
    /// recorded (the collector resolves subsumption in both directions),
    /// so this path buffers in the collector and flushes once the IT-tree walk settles — the sink
    /// contract forbids retractions. The IT-tree carries no generator
    /// information, so emissions are untagged.
    pub fn mine_engine_sink(
        &self,
        engine: &dyn SupportEngine,
        minsup: MinSupport,
        sink: &mut dyn ClosedSink,
    ) -> MiningStats {
        let n = engine.n_objects();
        if n == 0 {
            return MiningStats::default();
        }
        let min_count = minsup.to_count(n);
        let mut stats = MiningStats {
            db_passes: 1, // vertical covers are materialized once
            ..MiningStats::default()
        };

        // Root class: frequent items, sorted by increasing support (the
        // order CHARM relies on to find closures early), ties by id.
        let mut root: Vec<Node> = (0..engine.n_items())
            .filter_map(|i| {
                let cover = engine.cover(Item::new(i as u32));
                let support = cover.count() as Support;
                (support >= min_count).then(|| Node {
                    set: Itemset::from_ids([i as u32]),
                    tidset: cover,
                })
            })
            .collect();
        stats.candidates_counted += engine.n_items();
        root.sort_by(|a, b| {
            a.tidset
                .count()
                .cmp(&b.tidset.count())
                .then_with(|| a.set.cmp(&b.set))
        });

        let mut collector = Collector::default();
        Self::extend(&mut root, &mut collector, min_count, &mut stats);

        // Lattice bottom — frequent unless the threshold exceeds |O|.
        if n as Support >= min_count {
            sink.accept(
                &engine.closure(&Itemset::empty()),
                n as Support,
                Some(&Itemset::empty()),
            );
        }
        for (set, support) in &collector.sets {
            sink.accept(set, *support, None);
        }
        stats
    }

    fn extend(
        class: &mut Vec<Node>,
        collector: &mut Collector,
        min_count: Support,
        stats: &mut MiningStats,
    ) {
        let mut i = 0;
        while i < class.len() {
            // `x_set` accumulates items proven to share `x_tid` (props 1-2);
            // the tidset itself never changes.
            let mut x_set = class[i].set.clone();
            let x_tid = class[i].tidset.clone();
            let x_count = x_tid.count() as Support;
            let mut children: Vec<Node> = Vec::new();

            let mut j = i + 1;
            while j < class.len() {
                stats.candidates_counted += 1;
                let t = x_tid.intersection(&class[j].tidset);
                let support = t.count() as Support;
                if support < min_count {
                    j += 1;
                    continue;
                }
                let covers_i = support == x_count; // t(Xi) ⊆ t(Xj)
                let covers_j = support == class[j].tidset.count() as Support; // t(Xj) ⊆ t(Xi)
                match (covers_i, covers_j) {
                    // Property 1: identical tidsets — absorb Xj, drop it.
                    (true, true) => {
                        x_set = x_set.union(&class[j].set);
                        class.remove(j);
                    }
                    // Property 2: t(Xi) ⊂ t(Xj) — absorb Xj's items, keep Xj.
                    (true, false) => {
                        x_set = x_set.union(&class[j].set);
                        j += 1;
                    }
                    // Property 3: t(Xj) ⊂ t(Xi) — child node, drop Xj.
                    (false, true) => {
                        children.push(Node {
                            set: class[j].set.clone(),
                            tidset: t,
                        });
                        class.remove(j);
                    }
                    // Property 4: incomparable — child node, keep Xj.
                    (false, false) => {
                        children.push(Node {
                            set: class[j].set.clone(),
                            tidset: t,
                        });
                        j += 1;
                    }
                }
            }

            if !children.is_empty() {
                // Children extend the final accumulated x_set.
                for child in &mut children {
                    child.set = child.set.union(&x_set);
                }
                children.sort_by(|a, b| {
                    a.tidset
                        .count()
                        .cmp(&b.tidset.count())
                        .then_with(|| a.set.cmp(&b.set))
                });
                Self::extend(&mut children, collector, min_count, stats);
            }

            collector.insert(x_set, &x_tid);
            i += 1;
        }
    }
}

impl ClosedMiner for Charm {
    fn name(&self) -> &'static str {
        "charm"
    }

    fn mine_closed(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine(ctx, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::close::Close;
    use rulebases_dataset::paper_example;

    #[test]
    fn matches_close_on_paper_example() {
        let ctx = MiningContext::new(paper_example());
        for count in 1..=5u64 {
            let charm = Charm::new().mine(&ctx, MinSupport::Count(count));
            let close = Close::new().mine(&ctx, MinSupport::Count(count));
            assert_eq!(
                charm.into_sorted_vec(),
                close.into_sorted_vec(),
                "minsup count {count}"
            );
        }
    }

    #[test]
    fn every_reported_set_is_closed() {
        let ctx = MiningContext::new(paper_example());
        let fc = Charm::new().mine(&ctx, MinSupport::Count(1));
        for (s, sup) in fc.iter() {
            assert!(ctx.is_closed(s), "{s:?} is not closed");
            assert_eq!(ctx.support(s), sup);
        }
    }

    #[test]
    fn handles_identical_columns() {
        // Items 1 and 2 always co-occur: property 1 must merge them.
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![3],
        ]));
        let fc = Charm::new().mine(&ctx, MinSupport::Count(1));
        assert!(fc.contains(&Itemset::from_ids([1, 2])));
        assert!(!fc.contains(&Itemset::from_ids([1])));
        assert!(!fc.contains(&Itemset::from_ids([2])));
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        assert!(Charm::new().mine(&ctx, MinSupport::Count(1)).is_empty());
    }

    #[test]
    fn collector_is_insertion_order_independent() {
        // AB and its same-tidset superset ABC, inserted in both orders,
        // must leave only ABC. Superset-first is what CHARM's
        // ascending-support traversal produces; subset-first is the order
        // the old one-directional check silently got wrong (the partial
        // set survived as a phantom "closed" set).
        let tidset = {
            let mut t = BitSet::new(4);
            t.insert(0);
            t.insert(2);
            t
        };
        let partial = Itemset::from_ids([1, 2]);
        let full = Itemset::from_ids([1, 2, 3]);
        for first_is_partial in [true, false] {
            let mut collector = Collector::default();
            if first_is_partial {
                collector.insert(partial.clone(), &tidset);
                collector.insert(full.clone(), &tidset);
            } else {
                collector.insert(full.clone(), &tidset);
                collector.insert(partial.clone(), &tidset);
            }
            assert_eq!(
                collector.sets,
                vec![(full.clone(), 2)],
                "first_is_partial={first_is_partial}"
            );
        }
    }

    #[test]
    fn collector_keeps_distinct_closure_classes_apart() {
        // Same support, different tidsets: no subsumption either way.
        let t1 = {
            let mut t = BitSet::new(4);
            t.insert(0);
            t.insert(1);
            t
        };
        let t2 = {
            let mut t = BitSet::new(4);
            t.insert(2);
            t.insert(3);
            t
        };
        let mut collector = Collector::default();
        collector.insert(Itemset::from_ids([1]), &t1);
        collector.insert(Itemset::from_ids([1, 2]), &t2);
        assert_eq!(collector.sets.len(), 2);
    }

    #[test]
    fn cross_branch_closure_classes_match_brute_force() {
        // C's cover {0,1} is the intersection of A's {0,1,2} and B's
        // {0,1,3}: the closure class {0,1} = ABC is reachable both through
        // the C branch (prop-2 absorptions) and the A×B child — the shape
        // whose duplicate insertions exercise the collector's subsumption
        // resolution. Items: A=1, B=2, C=3.
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![
            vec![1, 2, 3],
            vec![1, 2, 3],
            vec![1],
            vec![2],
        ]));
        let fc = Charm::new().mine(&ctx, MinSupport::Count(1));
        let brute = crate::brute::brute_closed(&ctx, MinSupport::Count(1));
        assert_eq!(fc.into_sorted_vec(), brute.into_sorted_vec());
    }

    #[test]
    fn single_transaction() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![vec![
            1, 2, 3,
        ]]));
        let fc = Charm::new().mine(&ctx, MinSupport::Count(1));
        // Only one closed set: the whole transaction (= bottom).
        assert_eq!(fc.len(), 1);
        assert!(fc.contains(&Itemset::from_ids([1, 2, 3])));
    }
}
