//! Support-counting strategies for levelwise candidate sets.
//!
//! Three interchangeable strategies (benchmarked against each other in the
//! E8 ablation):
//!
//! * [`CountingStrategy::SubsetHash`] — transaction-driven: enumerate the
//!   `k`-subsets of every transaction and look them up in a hash map.
//!   Great for short transactions, catastrophic for long dense rows.
//! * [`CountingStrategy::HashTree`] — transaction-driven with the classic
//!   Apriori hash tree pruning the candidates each transaction visits.
//! * [`CountingStrategy::Vertical`] — candidate-driven through the
//!   context's [`SupportEngine`] batch API
//!   ([`SupportEngine::count_candidates`]): which vertical representation
//!   does the work (dense bitsets, tid-lists, diffsets) is the engine's
//!   choice, making the backend an independent ablation axis.
//! * [`CountingStrategy::Auto`] picks per level based on transaction
//!   length and `k`.
//!
//! [`SupportEngine`]: rulebases_dataset::SupportEngine
//! [`SupportEngine::count_candidates`]: rulebases_dataset::SupportEngine::count_candidates

use crate::hash_tree::HashTree;
use rulebases_dataset::{Item, Itemset, MiningContext, Support};
use std::collections::HashMap;

/// Which engine counts candidate supports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountingStrategy {
    /// Choose automatically per level.
    #[default]
    Auto,
    /// Enumerate transaction `k`-subsets into a hash map.
    SubsetHash,
    /// Classic hash-tree counting.
    HashTree,
    /// Candidate-driven counting via the context's vertical engine.
    Vertical,
}

/// Counts the support of every candidate (all of size `k`) in the context.
///
/// Returns the supports in candidate order.
pub fn count_candidates(
    ctx: &MiningContext,
    candidates: &[Itemset],
    k: usize,
    strategy: CountingStrategy,
) -> Vec<Support> {
    if candidates.is_empty() {
        return Vec::new();
    }
    debug_assert!(candidates.iter().all(|c| c.len() == k));
    match strategy {
        CountingStrategy::Auto => {
            // Subset enumeration costs ~C(avg_len, k) per transaction;
            // vertical costs ~k·|O|/64 words per candidate. Prefer the
            // transaction-driven engines only for short rows and small k.
            let avg_len = ctx.horizontal().avg_transaction_len();
            if k <= 3 && avg_len <= 30.0 {
                count_hash_tree(ctx, candidates, k)
            } else {
                count_vertical(ctx, candidates)
            }
        }
        CountingStrategy::SubsetHash => count_subset_hash(ctx, candidates, k),
        CountingStrategy::HashTree => count_hash_tree(ctx, candidates, k),
        CountingStrategy::Vertical => count_vertical(ctx, candidates),
    }
}

fn count_vertical(ctx: &MiningContext, candidates: &[Itemset]) -> Vec<Support> {
    ctx.engine().count_candidates(candidates)
}

fn count_hash_tree(ctx: &MiningContext, candidates: &[Itemset], k: usize) -> Vec<Support> {
    let tree = HashTree::build(candidates, k);
    let mut counts = vec![0; candidates.len()];
    for t in ctx.horizontal().iter() {
        tree.count_transaction(t, &mut counts);
    }
    counts
}

fn count_subset_hash(ctx: &MiningContext, candidates: &[Itemset], k: usize) -> Vec<Support> {
    let lookup: HashMap<&[Item], usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_slice(), i))
        .collect();
    let mut counts = vec![0; candidates.len()];
    let mut subset: Vec<Item> = Vec::with_capacity(k);
    for t in ctx.horizontal().iter() {
        if t.len() >= k {
            enumerate_subsets(t, k, &mut subset, &lookup, &mut counts);
        }
    }
    counts
}

/// Recursively enumerates the `k`-subsets of `items`, bumping the count of
/// any subset present in `lookup`.
fn enumerate_subsets(
    items: &[Item],
    k: usize,
    subset: &mut Vec<Item>,
    lookup: &HashMap<&[Item], usize>,
    counts: &mut [Support],
) {
    if subset.len() == k {
        if let Some(&idx) = lookup.get(subset.as_slice()) {
            counts[idx] += 1;
        }
        return;
    }
    let needed = k - subset.len();
    if items.len() < needed {
        return;
    }
    // Either take items[0] or skip it.
    subset.push(items[0]);
    enumerate_subsets(&items[1..], k, subset, lookup, counts);
    subset.pop();
    enumerate_subsets(&items[1..], k, subset, lookup, counts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::TransactionDb;

    fn ctx() -> MiningContext {
        MiningContext::new(TransactionDb::from_rows(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
            vec![1, 2, 3, 5],
        ]))
    }

    fn candidates2() -> Vec<Itemset> {
        vec![
            Itemset::from_ids([1, 3]),
            Itemset::from_ids([2, 5]),
            Itemset::from_ids([3, 5]),
            Itemset::from_ids([1, 4]),
            Itemset::from_ids([4, 5]),
        ]
    }

    #[test]
    fn all_strategies_agree() {
        let ctx = ctx();
        let cands = candidates2();
        let expected: Vec<Support> = cands.iter().map(|c| ctx.horizontal().support(c)).collect();
        assert_eq!(expected, vec![3, 4, 3, 1, 0]);
        for strategy in [
            CountingStrategy::Auto,
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
        ] {
            assert_eq!(
                count_candidates(&ctx, &cands, 2, strategy),
                expected,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn three_item_candidates() {
        let ctx = ctx();
        let cands = vec![
            Itemset::from_ids([1, 2, 3]),
            Itemset::from_ids([2, 3, 5]),
            Itemset::from_ids([1, 3, 4]),
        ];
        for strategy in [
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
        ] {
            assert_eq!(
                count_candidates(&ctx, &cands, 3, strategy),
                vec![2, 3, 1],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn empty_candidate_list() {
        let ctx = ctx();
        assert!(count_candidates(&ctx, &[], 2, CountingStrategy::Auto).is_empty());
    }
}
