//! Support-counting strategies for levelwise candidate sets.
//!
//! Interchangeable strategies (benchmarked against each other in the
//! E8 ablation):
//!
//! * [`CountingStrategy::SubsetHash`] — transaction-driven: enumerate the
//!   `k`-subsets of every transaction and look them up in a hash map.
//!   Great for short transactions, catastrophic for long dense rows.
//! * [`CountingStrategy::HashTree`] — transaction-driven with the classic
//!   Apriori hash tree pruning the candidates each transaction visits.
//! * [`CountingStrategy::Vertical`] — candidate-driven through the
//!   context's [`SupportEngine`] batch API
//!   ([`SupportEngine::count_candidates`]): which vertical representation
//!   does the work (dense bitsets, tid-lists, diffsets, shards) is the
//!   engine's choice, making the backend an independent ablation axis.
//! * [`CountingStrategy::Parallel`] — the vertical batch API over
//!   candidate chunks fanned across scoped threads
//!   ([`parallel_chunks`]): each worker batch-counts a contiguous slice
//!   of the level, and the per-chunk counts concatenate back in
//!   candidate order. When the engine is already sharded it fans
//!   internally, so this strategy steps aside rather than nest thread
//!   pools.
//! * [`CountingStrategy::Auto`] picks per level based on transaction
//!   length, `k`, the level width, and the configured [`Parallelism`].
//!
//! [`SupportEngine`]: rulebases_dataset::SupportEngine
//! [`SupportEngine::count_candidates`]: rulebases_dataset::SupportEngine::count_candidates
//! [`parallel_chunks`]: rulebases_dataset::pool::parallel_chunks

use crate::hash_tree::HashTree;
use rulebases_dataset::pool::parallel_chunks;
use rulebases_dataset::{Item, Itemset, MiningContext, Parallelism, Support, SupportEngine};
use std::collections::HashMap;

/// Minimum candidates in a level before a parallel path fans out — under
/// this, thread start-up costs more than the counting itself. Shared by
/// the levelwise closed miners.
pub const PARALLEL_MIN_CANDIDATES: usize = 64;

/// Which engine counts candidate supports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CountingStrategy {
    /// Choose automatically per level.
    #[default]
    Auto,
    /// Enumerate transaction `k`-subsets into a hash map.
    SubsetHash,
    /// Classic hash-tree counting.
    HashTree,
    /// Candidate-driven counting via the context's vertical engine.
    Vertical,
    /// Vertical batch counting over candidate chunks fanned across
    /// threads.
    Parallel,
}

/// Counts the support of every candidate (all of size `k`) in the
/// context, with the default ([`Parallelism::Auto`]) thread policy.
///
/// Returns the supports in candidate order.
pub fn count_candidates(
    ctx: &MiningContext,
    candidates: &[Itemset],
    k: usize,
    strategy: CountingStrategy,
) -> Vec<Support> {
    count_candidates_with(ctx, candidates, k, strategy, Parallelism::Auto)
}

/// Counts the support of every candidate (all of size `k`) in the
/// context under an explicit thread policy.
///
/// Returns the supports in candidate order.
pub fn count_candidates_with(
    ctx: &MiningContext,
    candidates: &[Itemset],
    k: usize,
    strategy: CountingStrategy,
    parallelism: Parallelism,
) -> Vec<Support> {
    if candidates.is_empty() {
        return Vec::new();
    }
    debug_assert!(candidates.iter().all(|c| c.len() == k));
    match strategy {
        CountingStrategy::Auto => {
            if ctx.engine().is_sharded() {
                // The sharded engine fans its own batch API internally.
                return count_vertical(ctx, candidates);
            }
            if parallelism.threads() > 1 && candidates.len() >= PARALLEL_MIN_CANDIDATES {
                return count_parallel(ctx, candidates, parallelism);
            }
            // Subset enumeration costs ~C(avg_len, k) per transaction;
            // vertical costs ~k·|O|/64 words per candidate. Prefer the
            // transaction-driven engines only for short rows and small k.
            let avg_len = ctx.horizontal().avg_transaction_len();
            if k <= 3 && avg_len <= 30.0 {
                count_hash_tree(ctx, candidates, k)
            } else {
                count_vertical(ctx, candidates)
            }
        }
        CountingStrategy::SubsetHash => count_subset_hash(ctx, candidates, k),
        CountingStrategy::HashTree => count_hash_tree(ctx, candidates, k),
        CountingStrategy::Vertical => count_vertical(ctx, candidates),
        CountingStrategy::Parallel => count_parallel(ctx, candidates, parallelism),
    }
}

fn count_vertical(ctx: &MiningContext, candidates: &[Itemset]) -> Vec<Support> {
    ctx.engine().count_candidates(candidates)
}

/// Maps `f` over one candidate level (or generator set), fanning chunks
/// across threads when the policy grants more than one, the level is at
/// least [`PARALLEL_MIN_CANDIDATES`] wide, and the engine does not
/// already parallelize internally (thread pools never nest). Results
/// come back in input order, so the sequential and fanned paths are
/// interchangeable — this one guard is shared by Close's per-level
/// extent/closure evaluation and A-Close's closure phase.
pub fn map_level<T, R, F>(
    engine: &dyn SupportEngine,
    parallelism: Parallelism,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = parallelism.threads();
    if threads > 1 && items.len() >= PARALLEL_MIN_CANDIDATES && !engine.is_sharded() {
        parallel_chunks(items, threads, |chunk| chunk.iter().map(&f).collect())
    } else {
        items.iter().map(&f).collect()
    }
}

/// Fans the level over candidate chunks, each batch-counted by the
/// engine on its own scoped thread; degenerates to [`count_vertical`]
/// when the policy is sequential or the engine shards internally.
fn count_parallel(
    ctx: &MiningContext,
    candidates: &[Itemset],
    parallelism: Parallelism,
) -> Vec<Support> {
    let engine = ctx.engine();
    let threads = parallelism.threads();
    if threads <= 1 || engine.is_sharded() {
        return count_vertical(ctx, candidates);
    }
    parallel_chunks(candidates, threads, |chunk| engine.count_candidates(chunk))
}

fn count_hash_tree(ctx: &MiningContext, candidates: &[Itemset], k: usize) -> Vec<Support> {
    let tree = HashTree::build(candidates, k);
    let mut counts = vec![0; candidates.len()];
    for t in ctx.horizontal().iter() {
        tree.count_transaction(t, &mut counts);
    }
    counts
}

fn count_subset_hash(ctx: &MiningContext, candidates: &[Itemset], k: usize) -> Vec<Support> {
    let lookup: HashMap<&[Item], usize> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (c.as_slice(), i))
        .collect();
    let mut counts = vec![0; candidates.len()];
    let mut subset: Vec<Item> = Vec::with_capacity(k);
    for t in ctx.horizontal().iter() {
        if t.len() >= k {
            enumerate_subsets(t, k, &mut subset, &lookup, &mut counts);
        }
    }
    counts
}

/// Recursively enumerates the `k`-subsets of `items`, bumping the count of
/// any subset present in `lookup`.
fn enumerate_subsets(
    items: &[Item],
    k: usize,
    subset: &mut Vec<Item>,
    lookup: &HashMap<&[Item], usize>,
    counts: &mut [Support],
) {
    if subset.len() == k {
        if let Some(&idx) = lookup.get(subset.as_slice()) {
            counts[idx] += 1;
        }
        return;
    }
    let needed = k - subset.len();
    if items.len() < needed {
        return;
    }
    // Either take items[0] or skip it.
    subset.push(items[0]);
    enumerate_subsets(&items[1..], k, subset, lookup, counts);
    subset.pop();
    enumerate_subsets(&items[1..], k, subset, lookup, counts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::TransactionDb;

    fn ctx() -> MiningContext {
        MiningContext::new(TransactionDb::from_rows(vec![
            vec![1, 3, 4],
            vec![2, 3, 5],
            vec![1, 2, 3, 5],
            vec![2, 5],
            vec![1, 2, 3, 5],
        ]))
    }

    fn candidates2() -> Vec<Itemset> {
        vec![
            Itemset::from_ids([1, 3]),
            Itemset::from_ids([2, 5]),
            Itemset::from_ids([3, 5]),
            Itemset::from_ids([1, 4]),
            Itemset::from_ids([4, 5]),
        ]
    }

    #[test]
    fn all_strategies_agree() {
        let ctx = ctx();
        let cands = candidates2();
        let expected: Vec<Support> = cands.iter().map(|c| ctx.horizontal().support(c)).collect();
        assert_eq!(expected, vec![3, 4, 3, 1, 0]);
        for strategy in [
            CountingStrategy::Auto,
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
            CountingStrategy::Parallel,
        ] {
            assert_eq!(
                count_candidates(&ctx, &cands, 2, strategy),
                expected,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn parallel_strategy_agrees_when_forced_to_fan() {
        // Enough candidates to occupy several chunks, counted under an
        // explicit thread policy so the fan-out runs even on one core.
        let rows: Vec<Vec<u32>> = (0..120u32).map(|t| vec![t % 5, 5 + t % 4, 9]).collect();
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(rows));
        let candidates: Vec<Itemset> = (0..5u32)
            .flat_map(|a| (5..9u32).map(move |b| Itemset::from_ids([a, b])))
            .collect();
        let serial = count_candidates_with(
            &ctx,
            &candidates,
            2,
            CountingStrategy::Vertical,
            Parallelism::Off,
        );
        for threads in [1, 2, 3, 7] {
            let parallel = count_candidates_with(
                &ctx,
                &candidates,
                2,
                CountingStrategy::Parallel,
                Parallelism::Fixed(threads),
            );
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_strategy_over_sharded_engine_delegates() {
        use rulebases_dataset::EngineKind;
        let rows: Vec<Vec<u32>> = (0..130u32).map(|t| vec![t % 6, 6 + t % 3]).collect();
        let db = rulebases_dataset::TransactionDb::from_rows(rows);
        let sharded_ctx = MiningContext::with_engine(
            db.clone(),
            EngineKind::Sharded {
                shards: 3,
                inner: Box::new(EngineKind::Dense),
            },
        );
        let plain_ctx = MiningContext::new(db);
        let candidates: Vec<Itemset> = (0..6u32).map(|a| Itemset::from_ids([a, 6])).collect();
        assert_eq!(
            count_candidates_with(
                &sharded_ctx,
                &candidates,
                2,
                CountingStrategy::Parallel,
                Parallelism::Fixed(4),
            ),
            count_candidates(&plain_ctx, &candidates, 2, CountingStrategy::Vertical),
        );
    }

    #[test]
    fn three_item_candidates() {
        let ctx = ctx();
        let cands = vec![
            Itemset::from_ids([1, 2, 3]),
            Itemset::from_ids([2, 3, 5]),
            Itemset::from_ids([1, 3, 4]),
        ];
        for strategy in [
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
        ] {
            assert_eq!(
                count_candidates(&ctx, &cands, 3, strategy),
                vec![2, 3, 1],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn empty_candidate_list() {
        let ctx = ctx();
        assert!(count_candidates(&ctx, &[], 2, CountingStrategy::Auto).is_empty());
    }
}
