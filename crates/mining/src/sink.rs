//! Streaming emission of closed itemsets.
//!
//! The staged pipeline mines all closed sets into a [`ClosedItemsets`]
//! container, then rebuilds the iceberg Hasse diagram from scratch, then
//! derives the rule bases in a third pass — three traversals over the
//! same lattice. [`ClosedSink`] decouples *discovery* from *collection*:
//! every closed miner can push each `(closed set, support)` it proves
//! into a sink as it is found, so a consumer (e.g. the fused pipeline's
//! incremental Hasse builder) processes the lattice during the single
//! mining traversal instead of re-walking it afterwards.
//!
//! Contract:
//!
//! * A miner may emit the **same closed set more than once** (Close
//!   reaches one closure from several generators); re-emissions always
//!   carry the same support, and sinks deduplicate.
//! * Every emitted set is genuinely closed and frequent at the mining
//!   threshold — miners that can only prove closedness globally (CHARM's
//!   subsumption check) buffer internally and flush once settled, rather
//!   than stream retractions.
//! * Emission order is unspecified; sinks must not rely on it.
//! * `generator` optionally names a minimal generator of the emitted
//!   closed set (a minimal itemset with the same closure) when the
//!   traversal has one at hand — the levelwise miners work generator-wise
//!   and tag for free, CHARM's IT-tree does not and passes `None`.
//!   Downstream, these miner-proven generators seed the incremental
//!   lattice's per-class tag sets directly (subsumption-minimal
//!   recording, no recomputation), so the fused pipeline never derives
//!   a generator the miner already proved.

use crate::itemsets::ClosedItemsets;
use rulebases_dataset::{Itemset, Support};

/// Receives closed itemsets as a miner discovers them.
pub trait ClosedSink {
    /// Observes one discovered frequent closed itemset (possibly a
    /// duplicate of an earlier emission, always with the same support),
    /// together with the minimal generator that produced it when the
    /// miner knows one.
    fn accept(&mut self, set: &Itemset, support: Support, generator: Option<&Itemset>);
}

/// The trivial sink: collects every emission into a vector, from which
/// [`CollectSink::into_closed`] builds the deduplicated, canonically
/// sorted [`ClosedItemsets`]. The buffered `mine_engine` entry points are
/// implemented as `mine_engine_sink` over this sink.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    pairs: Vec<(Itemset, Support)>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the collected emissions into a [`ClosedItemsets`].
    pub fn into_closed(self, min_count: Support, n_objects: usize) -> ClosedItemsets {
        ClosedItemsets::from_pairs(self.pairs, min_count, n_objects)
    }
}

impl ClosedSink for CollectSink {
    fn accept(&mut self, set: &Itemset, support: Support, _generator: Option<&Itemset>) {
        self.pairs.push((set.clone(), support));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn collect_sink_dedups_and_sorts() {
        let mut sink = CollectSink::new();
        sink.accept(&set(&[2, 5]), 4, None);
        sink.accept(&set(&[3]), 4, Some(&set(&[3])));
        sink.accept(&set(&[2, 5]), 4, Some(&set(&[2])));
        let fc = sink.into_closed(2, 5);
        assert_eq!(fc.len(), 2);
        let sets: Vec<Itemset> = fc.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(sets, vec![set(&[3]), set(&[2, 5])]);
    }
}
