//! # rulebases-mining
//!
//! Frequent- and frequent-closed-itemset miners for the `rulebases`
//! workspace — the algorithmic substrate of *"Mining Bases for Association
//! Rules Using Closed Sets"* (Taouil et al., ICDE 2000).
//!
//! Implemented algorithms:
//!
//! * [`Apriori`] — the classic levelwise frequent-itemset baseline, with
//!   three interchangeable [counting strategies](counting::CountingStrategy)
//!   (subset hashing, hash tree, vertical bitsets);
//! * [`Close`] — the paper family's levelwise closed-set miner
//!   (generators + closure-by-intersection);
//! * [`AClose`] — minimal generators first, closures at the end;
//! * [`Charm`] — the vertical IT-tree cross-check;
//! * [`FpGrowth`] — the pattern-growth frequent-itemset baseline;
//! * [`generators::mine_generators`] — frequent minimal generators (key
//!   itemsets), also used by the generic/informative rule bases;
//! * [`brute`] — exponential oracles backing the property-test suites.
//!
//! ```
//! use rulebases_dataset::{paper_example, MiningContext, MinSupport};
//! use rulebases_mining::{Apriori, Close};
//!
//! let ctx = MiningContext::new(paper_example());
//! let frequent = Apriori::new().mine(&ctx, MinSupport::Fraction(0.4));
//! let closed = Close::new().mine(&ctx, MinSupport::Fraction(0.4));
//! assert_eq!(frequent.len(), 15);
//! assert_eq!(closed.len(), 6); // ∅, C, AC, BE, BCE, ABCE
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aclose;
pub mod apriori;
pub mod brute;
pub mod candidates;
pub mod charm;
pub mod close;
pub mod counting;
pub mod fpgrowth;
pub mod generators;
pub mod hash_tree;
pub mod itemsets;
pub mod sink;
pub mod traits;

pub use aclose::AClose;
pub use apriori::Apriori;
pub use charm::Charm;
pub use close::Close;
pub use counting::CountingStrategy;
pub use fpgrowth::FpGrowth;
pub use generators::{mine_generators, mine_generators_engine, GeneratorSet};
pub use itemsets::{ClosedItemsets, FrequentItemsets, MiningStats};
pub use sink::{ClosedSink, CollectSink};
pub use traits::{ClosedAlgorithm, ClosedMiner, FrequentMiner};
