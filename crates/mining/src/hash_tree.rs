//! Hash tree for candidate support counting.
//!
//! The classic Apriori data structure (Agrawal & Srikant, VLDB'94): `k`-item
//! candidates are stored in a tree whose interior nodes hash on successive
//! items, so one pass over a transaction visits only the candidates that
//! can possibly be contained in it. Buckets are a *hash* partition — two
//! different items can share a bucket — so the leaf always verifies full
//! containment against the whole transaction.

use rulebases_dataset::{Item, Itemset, Support};

const FANOUT: usize = 16;
const LEAF_CAPACITY: usize = 8;

enum Node {
    Interior(Box<[Option<Node>; FANOUT]>),
    /// `(candidate index, items)` pairs.
    Leaf(Vec<(usize, Itemset)>),
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf(Vec::new())
    }

    fn leaf_push(&mut self, idx: usize, set: Itemset) {
        if let Node::Leaf(entries) = self {
            entries.push((idx, set));
        } else {
            unreachable!("leaf_push on interior node");
        }
    }
}

#[inline]
fn bucket(item: Item) -> usize {
    item.index() % FANOUT
}

/// A hash tree over equally sized candidate itemsets.
pub struct HashTree {
    root: Node,
    k: usize,
    len: usize,
}

impl HashTree {
    /// Builds a hash tree over `candidates`, all of which must have `k`
    /// items.
    pub fn build(candidates: &[Itemset], k: usize) -> Self {
        assert!(k >= 1, "hash tree needs k >= 1");
        let mut tree = HashTree {
            root: Node::empty_leaf(),
            k,
            len: 0,
        };
        for (idx, c) in candidates.iter().enumerate() {
            assert_eq!(c.len(), k, "candidate {c:?} is not a {k}-itemset");
            tree.insert(idx, c);
        }
        tree
    }

    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn insert(&mut self, idx: usize, candidate: &Itemset) {
        let k = self.k;
        let mut node = &mut self.root;
        let mut depth = 0;
        loop {
            // Split saturated leaves while we can still discriminate.
            if let Node::Leaf(entries) = node {
                if entries.len() >= LEAF_CAPACITY && depth < k {
                    let old = std::mem::take(entries);
                    let mut children: Box<[Option<Node>; FANOUT]> =
                        Box::new(std::array::from_fn(|_| None));
                    for (i, set) in old {
                        let b = bucket(set.as_slice()[depth]);
                        children[b]
                            .get_or_insert_with(Node::empty_leaf)
                            .leaf_push(i, set);
                    }
                    *node = Node::Interior(children);
                }
            }
            match node {
                Node::Leaf(entries) => {
                    entries.push((idx, candidate.clone()));
                    self.len += 1;
                    return;
                }
                Node::Interior(children) => {
                    let b = bucket(candidate.as_slice()[depth]);
                    node = children[b].get_or_insert_with(Node::empty_leaf);
                    depth += 1;
                }
            }
        }
    }

    /// Adds 1 to `counts[i]` for every stored candidate `i` contained in
    /// the (sorted) `transaction`.
    pub fn count_transaction(&self, transaction: &[Item], counts: &mut [Support]) {
        if transaction.len() < self.k {
            return;
        }
        Self::visit(&self.root, transaction, transaction, counts);
    }

    fn visit(node: &Node, transaction: &[Item], remaining: &[Item], counts: &mut [Support]) {
        match node {
            Node::Leaf(entries) => {
                for (idx, candidate) in entries {
                    // The path only constrains item *hashes*; verify the
                    // actual candidate against the full transaction.
                    if contains_sorted(transaction, candidate.as_slice()) {
                        counts[*idx] += 1;
                    }
                }
            }
            Node::Interior(children) => {
                // Descend once per bucket reachable from the remaining
                // items; deeper path items must come after the chosen one.
                let mut visited = [false; FANOUT];
                for (pos, &item) in remaining.iter().enumerate() {
                    let b = bucket(item);
                    if visited[b] {
                        continue;
                    }
                    visited[b] = true;
                    if let Some(child) = &children[b] {
                        Self::visit(child, transaction, &remaining[pos + 1..], counts);
                    }
                }
            }
        }
    }
}

/// Whether the sorted `needle` is contained in the sorted `haystack`.
fn contains_sorted(haystack: &[Item], needle: &[Item]) -> bool {
    let mut h = 0;
    'outer: for &x in needle {
        while h < haystack.len() {
            if haystack[h] < x {
                h += 1;
            } else if haystack[h] == x {
                h += 1;
                continue 'outer;
            } else {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item::new(i)).collect()
    }

    #[test]
    fn counts_simple_candidates() {
        let candidates = vec![set(&[1, 2]), set(&[2, 3]), set(&[1, 3])];
        let tree = HashTree::build(&candidates, 2);
        assert_eq!(tree.len(), 3);
        let mut counts = vec![0; 3];
        tree.count_transaction(&items(&[1, 2, 3]), &mut counts);
        assert_eq!(counts, vec![1, 1, 1]);
        tree.count_transaction(&items(&[1, 2]), &mut counts);
        assert_eq!(counts, vec![2, 1, 1]);
        tree.count_transaction(&items(&[3]), &mut counts);
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn short_transactions_are_skipped() {
        let tree = HashTree::build(&[set(&[1, 2, 3])], 3);
        let mut counts = vec![0; 1];
        tree.count_transaction(&items(&[1, 2]), &mut counts);
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn bucket_collisions_do_not_overcount() {
        // Items 0 and 16 share bucket 0 (FANOUT = 16). The candidate
        // {0, 16} must not be counted for a transaction containing 16 but
        // not 0 — the regression this tree once had.
        let candidates = vec![set(&[0, 16])];
        let tree = HashTree::build(&candidates, 2);
        let mut counts = vec![0; 1];
        tree.count_transaction(&items(&[16, 32]), &mut counts);
        assert_eq!(counts, vec![0]);
        tree.count_transaction(&items(&[0, 16]), &mut counts);
        assert_eq!(counts, vec![1]);
    }

    #[test]
    fn matches_naive_counting_with_colliding_items() {
        // Candidate items spread far beyond one bucket cycle, plus enough
        // candidates to force leaf splits.
        let ids: Vec<u32> = (0..12).map(|i| i * 17 + (i % 3)).collect();
        let mut candidates = Vec::new();
        for a in 0..ids.len() {
            for b in (a + 1)..ids.len() {
                for c in (b + 1)..ids.len() {
                    candidates.push(set(&[ids[a], ids[b], ids[c]]));
                }
            }
        }
        let tree = HashTree::build(&candidates, 3);
        assert_eq!(tree.len(), candidates.len());

        let transactions = [
            items(&ids[0..5]),
            items(&[ids[2], ids[5], ids[7], ids[9], ids[11]]),
            items(&[ids[0], ids[3], ids[6], ids[9]]),
            items(&[ids[1], ids[2]]),
            items(&ids),
            items(&[0, 16, 32, 48]), // collision-heavy non-candidate items
        ];
        let mut counts = vec![0; candidates.len()];
        for t in &transactions {
            tree.count_transaction(t, &mut counts);
        }
        for (i, c) in candidates.iter().enumerate() {
            let expected = transactions
                .iter()
                .filter(|t| contains_sorted(t, c.as_slice()))
                .count() as Support;
            assert_eq!(counts[i], expected, "candidate {c:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not a 2-itemset")]
    fn rejects_wrong_arity() {
        let _ = HashTree::build(&[set(&[1, 2, 3])], 2);
    }
}
