//! The Apriori algorithm (Agrawal & Srikant, VLDB'94).
//!
//! The levelwise baseline the paper compares Close and A-Close against: it
//! enumerates *all* frequent itemsets, counting one candidate level per
//! database pass.

use crate::candidates::join_and_prune;
use crate::counting::{count_candidates_with, CountingStrategy};
use crate::itemsets::{FrequentItemsets, MiningStats};
use crate::traits::FrequentMiner;
use rulebases_dataset::{Itemset, MinSupport, MiningContext, Parallelism};

/// Apriori frequent-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Apriori {
    /// How candidate supports are counted.
    pub counting: CountingStrategy,
    /// Thread policy for the per-level counting fan-out.
    pub parallelism: Parallelism,
}

impl Apriori {
    /// Apriori with automatic counting-strategy selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apriori with an explicit counting strategy.
    pub fn with_counting(counting: CountingStrategy) -> Self {
        Apriori {
            counting,
            ..Self::default()
        }
    }

    /// Sets the thread policy (default [`Parallelism::Auto`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Mines all frequent itemsets of `ctx` at threshold `minsup`.
    pub fn mine(&self, ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets {
        let n = ctx.n_objects();
        let mut stats = MiningStats::default();
        if n == 0 {
            return FrequentItemsets::new(1, 0);
        }
        let min_count = ctx.min_support_count(minsup);
        let mut result = FrequentItemsets::new(min_count, n);

        // Level 1: one pass counting single items.
        stats.db_passes += 1;
        let item_supports = ctx.engine().item_supports();
        stats.candidates_counted += item_supports.len();
        let mut level: Vec<Itemset> = Vec::new();
        for (i, &support) in item_supports.iter().enumerate() {
            if support >= min_count {
                let single = Itemset::from_ids([i as u32]);
                result.insert(single.clone(), support);
                level.push(single);
            }
        }

        // Levels k >= 2.
        let mut k = 2;
        while level.len() >= 2 {
            let candidates = join_and_prune(&level);
            if candidates.is_empty() {
                break;
            }
            stats.db_passes += 1;
            stats.candidates_counted += candidates.len();
            let counts =
                count_candidates_with(ctx, &candidates, k, self.counting, self.parallelism);
            let mut next = Vec::with_capacity(candidates.len());
            for (candidate, support) in candidates.into_iter().zip(counts) {
                if support >= min_count {
                    result.insert(candidate.clone(), support);
                    next.push(candidate);
                }
            }
            level = next;
            k += 1;
        }

        result.stats = stats;
        result
    }
}

impl FrequentMiner for Apriori {
    fn name(&self) -> &'static str {
        "apriori"
    }

    fn mine_frequent(&self, ctx: &MiningContext, minsup: MinSupport) -> FrequentItemsets {
        self.mine(ctx, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn paper_example_at_minsup_two_fifths() {
        let ctx = MiningContext::new(paper_example());
        let f = Apriori::new().mine(&ctx, MinSupport::Fraction(0.4));
        // 15 frequent itemsets (see Pasquier et al.'s running example).
        assert_eq!(f.len(), 15);
        assert_eq!(f.support(&set(&[1])), Some(3));
        assert_eq!(f.support(&set(&[2, 5])), Some(4));
        assert_eq!(f.support(&set(&[1, 2, 3, 5])), Some(2));
        assert_eq!(f.support(&set(&[4])), None); // D has support 1 < 2
        assert_eq!(f.level_counts(), vec![0, 4, 6, 4, 1]);
    }

    #[test]
    fn minsup_one_keeps_everything_supported() {
        let ctx = MiningContext::new(paper_example());
        let f = Apriori::new().mine(&ctx, MinSupport::Count(1));
        // D appears now; ACD is the largest set containing it.
        assert_eq!(f.support(&set(&[4])), Some(1));
        assert_eq!(f.support(&set(&[1, 3, 4])), Some(1));
        assert_eq!(f.support(&set(&[1, 4, 5])), None); // unsupported
    }

    #[test]
    fn high_minsup_leaves_only_top_items() {
        let ctx = MiningContext::new(paper_example());
        let f = Apriori::new().mine(&ctx, MinSupport::Fraction(0.8));
        // Only B, C, E (support 4) and BE (support 4) reach 80%.
        assert_eq!(f.len(), 4);
        assert!(f.contains(&set(&[2, 5])));
    }

    #[test]
    fn all_counting_strategies_agree() {
        let ctx = MiningContext::new(paper_example());
        let baseline =
            Apriori::with_counting(CountingStrategy::Vertical).mine(&ctx, MinSupport::Count(2));
        for strategy in [
            CountingStrategy::Auto,
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Parallel,
        ] {
            let f = Apriori::with_counting(strategy)
                .parallelism(rulebases_dataset::Parallelism::Fixed(2))
                .mine(&ctx, MinSupport::Count(2));
            assert_eq!(f.len(), baseline.len(), "{strategy:?}");
            for (set, support) in baseline.iter() {
                assert_eq!(f.support(set), Some(support), "{strategy:?} on {set:?}");
            }
        }
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        let f = Apriori::new().mine(&ctx, MinSupport::Fraction(0.5));
        assert!(f.is_empty());
    }

    #[test]
    fn stats_track_passes() {
        let ctx = MiningContext::new(paper_example());
        let f = Apriori::new().mine(&ctx, MinSupport::Count(2));
        // Levels 1..=4 counted, plus the attempted level 5 join yields no
        // candidates: 4 passes.
        assert_eq!(f.stats.db_passes, 4);
        assert!(f.stats.candidates_counted >= 15);
    }
}
