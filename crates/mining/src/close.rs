//! The **Close** algorithm (Pasquier, Bastide, Taouil, Lakhal —
//! Information Systems 24(1), 1999).
//!
//! Close mines the frequent *closed* itemsets `FC` directly, levelwise over
//! *generator* itemsets: at each level it keeps the candidate generators,
//! computes their closures by intersecting the transactions of their
//! extents, and prunes any candidate that is contained in the closure of
//! one of its facets (such a candidate has the same closure and would be
//! redundant). Because closures jump ahead of the levelwise frontier,
//! Close needs far fewer database passes than Apriori on correlated data —
//! the efficiency claim of the paper family.

use crate::candidates::join_and_prune;
use crate::counting::map_level;
use crate::itemsets::{ClosedItemsets, MiningStats};
use crate::sink::{ClosedSink, CollectSink};
use crate::traits::ClosedMiner;
use rulebases_dataset::{
    Item, Itemset, MinSupport, MiningContext, Parallelism, Support, SupportEngine,
};
use std::collections::HashMap;

/// The Close frequent-closed-itemset miner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Close {
    /// Thread policy for the per-level extent/closure fan-out.
    pub parallelism: Parallelism,
}

impl Close {
    /// Creates a Close miner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the thread policy (default [`Parallelism::Auto`]).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Mines the frequent closed itemsets of `ctx` at `minsup`, through
    /// the context's (cached) engine.
    pub fn mine(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine_engine(ctx.engine(), minsup)
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`.
    ///
    /// The result always contains the lattice bottom `h(∅)` (the items
    /// common to all objects — possibly the empty itemset), which the
    /// rule-base constructions need.
    pub fn mine_engine(&self, engine: &dyn SupportEngine, minsup: MinSupport) -> ClosedItemsets {
        let n = engine.n_objects();
        if n == 0 {
            return ClosedItemsets::from_pairs(Vec::new(), 1, 0);
        }
        let min_count = minsup.to_count(n);
        let mut sink = CollectSink::new();
        let stats = self.mine_engine_sink(engine, minsup, &mut sink);
        let mut result = sink.into_closed(min_count, n);
        result.stats = stats;
        result
    }

    /// Mines the frequent closed itemsets of any [`SupportEngine`] at
    /// `minsup`, streaming every discovered closed set (tagged with the
    /// generator that reached it) into `sink` instead of materializing a
    /// container. One closure class may be emitted once per generator;
    /// sinks deduplicate (see [`ClosedSink`]).
    pub fn mine_engine_sink(
        &self,
        engine: &dyn SupportEngine,
        minsup: MinSupport,
        sink: &mut dyn ClosedSink,
    ) -> MiningStats {
        let n = engine.n_objects();
        let mut stats = MiningStats::default();
        if n == 0 {
            return stats;
        }
        let min_count = minsup.to_count(n);

        // Lattice bottom: closure of the empty set, supported by every
        // object — frequent unless the threshold exceeds |O|.
        if n as Support >= min_count {
            sink.accept(
                &engine.closure(&Itemset::empty()),
                n as Support,
                Some(&Itemset::empty()),
            );
        }

        // Level 1: singleton generators. One pass computes extents,
        // supports and closures.
        stats.db_passes += 1;
        let mut generators: Vec<Itemset> = Vec::new();
        let mut closures: HashMap<Itemset, Itemset> = HashMap::new();
        for i in 0..engine.n_items() {
            stats.candidates_counted += 1;
            let cover = engine.cover(Item::new(i as u32));
            let support = cover.count() as Support;
            if support < min_count {
                continue;
            }
            let generator = Itemset::from_ids([i as u32]);
            let closure = engine.closure_of_tidset(&cover);
            // A full-support singleton reaches the bottom, whose minimal
            // generator is ∅ (tagged above) — the singleton is not one.
            let tag = (support < n as Support).then_some(&generator);
            sink.accept(&closure, support, tag);
            closures.insert(generator.clone(), closure);
            generators.push(generator);
        }

        // Levels k >= 2 over generators.
        while generators.len() >= 2 {
            let mut candidates = join_and_prune(&generators);
            // Close-specific prune: if a candidate is contained in the
            // closure of one of its facets, it has that facet's closure —
            // already recorded.
            candidates.retain(|c| {
                !c.facets()
                    .any(|facet| closures.get(&facet).is_some_and(|cl| c.is_subset_of(cl)))
            });
            if candidates.is_empty() {
                break;
            }
            stats.db_passes += 1;
            stats.candidates_counted += candidates.len();
            // Each candidate is independent (extent → support filter →
            // closure), so wide levels fan over candidate chunks; the
            // merge below runs sequentially in candidate order, keeping
            // the output deterministic whatever the thread policy. A
            // sharded engine already fans each query internally, so the
            // level stays sequential rather than nest thread pools.
            let evaluate = |candidate: &Itemset| {
                let extent = engine.tidset_of(candidate);
                let support = extent.count() as Support;
                (support >= min_count).then(|| (engine.closure_of_tidset(&extent), support))
            };
            let evaluated: Vec<Option<(Itemset, Support)>> =
                map_level(engine, self.parallelism, &candidates, evaluate);
            let mut next_generators = Vec::with_capacity(candidates.len());
            let mut next_closures = HashMap::with_capacity(candidates.len());
            for (candidate, result) in candidates.into_iter().zip(evaluated) {
                let Some((closure, support)) = result else {
                    continue;
                };
                sink.accept(&closure, support, Some(&candidate));
                next_closures.insert(candidate.clone(), closure);
                next_generators.push(candidate);
            }
            generators = next_generators;
            closures = next_closures;
        }

        stats
    }
}

impl ClosedMiner for Close {
    fn name(&self) -> &'static str {
        "close"
    }

    fn mine_closed(&self, ctx: &MiningContext, minsup: MinSupport) -> ClosedItemsets {
        self.mine(ctx, minsup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulebases_dataset::paper_example;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn paper_example_closed_sets() {
        let ctx = MiningContext::new(paper_example());
        let fc = Close::new().mine(&ctx, MinSupport::Fraction(0.4));
        // FC at minsup 2/5: ∅ (bottom), C, AC, BE, BCE, ABCE.
        let sets: Vec<Itemset> = fc.iter().map(|(s, _)| s.clone()).collect();
        assert_eq!(
            sets,
            vec![
                Itemset::empty(),
                set(&[3]),
                set(&[1, 3]),
                set(&[2, 5]),
                set(&[2, 3, 5]),
                set(&[1, 2, 3, 5]),
            ]
        );
        assert_eq!(fc.support_of_closed(&set(&[3])), Some(4));
        assert_eq!(fc.support_of_closed(&set(&[1, 3])), Some(3));
        assert_eq!(fc.support_of_closed(&set(&[2, 5])), Some(4));
        assert_eq!(fc.support_of_closed(&set(&[2, 3, 5])), Some(3));
        assert_eq!(fc.support_of_closed(&set(&[1, 2, 3, 5])), Some(2));
    }

    #[test]
    fn minsup_one_includes_acd() {
        let ctx = MiningContext::new(paper_example());
        let fc = Close::new().mine(&ctx, MinSupport::Count(1));
        assert_eq!(fc.support_of_closed(&set(&[1, 3, 4])), Some(1));
        // 7 closed sets: bottom ∅, C, AC, BE, BCE, ACD, ABCE.
        assert_eq!(fc.len(), 7);
    }

    #[test]
    fn every_reported_set_is_closed_and_frequent() {
        let ctx = MiningContext::new(paper_example());
        let fc = Close::new().mine(&ctx, MinSupport::Count(2));
        for (s, sup) in fc.iter() {
            assert!(ctx.is_closed(s), "{s:?} not closed");
            assert_eq!(ctx.support(s), sup, "{s:?} support");
            assert!(sup >= 2 || s.is_empty());
        }
    }

    #[test]
    fn bottom_with_common_item() {
        // Item 7 occurs in every transaction: h(∅) = {7}.
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![
            vec![1, 7],
            vec![2, 7],
            vec![7],
        ]));
        let fc = Close::new().mine(&ctx, MinSupport::Count(1));
        assert_eq!(fc.support_of_closed(&set(&[7])), Some(3));
        // ∅ itself is *not* closed here.
        assert!(!fc.contains(&Itemset::empty()));
    }

    #[test]
    fn fewer_passes_than_apriori_on_correlated_data() {
        let ctx = MiningContext::new(paper_example());
        let fc = Close::new().mine(&ctx, MinSupport::Count(2));
        let f = crate::apriori::Apriori::new().mine(&ctx, MinSupport::Count(2));
        assert!(
            fc.stats.db_passes < f.stats.db_passes,
            "close passes {} !< apriori passes {}",
            fc.stats.db_passes,
            f.stats.db_passes
        );
    }

    #[test]
    fn empty_context() {
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(vec![]));
        let fc = Close::new().mine(&ctx, MinSupport::Count(1));
        assert!(fc.is_empty());
    }

    #[test]
    fn forced_parallelism_matches_sequential() {
        // Wide enough for multiple chunks under Fixed(3); the engine
        // backend and the thread policy must not change a single closed
        // set or support.
        let rows: Vec<Vec<u32>> = (0..90u32)
            .map(|t| vec![t % 4, 4 + t % 3, 7 + (t / 2) % 5])
            .collect();
        let ctx = MiningContext::new(rulebases_dataset::TransactionDb::from_rows(rows));
        let sequential = Close::new()
            .parallelism(Parallelism::Off)
            .mine(&ctx, MinSupport::Count(2));
        for threads in [2, 3, 8] {
            let parallel = Close::new()
                .parallelism(Parallelism::Fixed(threads))
                .mine(&ctx, MinSupport::Count(2));
            assert_eq!(
                parallel.clone().into_sorted_vec(),
                sequential.clone().into_sorted_vec(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn mines_over_a_sharded_engine() {
        use rulebases_dataset::EngineKind;
        let rows: Vec<Vec<u32>> = (0..150u32).map(|t| vec![t % 5, 5 + t % 3]).collect();
        let db = rulebases_dataset::TransactionDb::from_rows(rows);
        let reference = Close::new().mine(&MiningContext::new(db.clone()), MinSupport::Count(3));
        let sharded = MiningContext::with_engine(
            db,
            EngineKind::Sharded {
                shards: 4,
                inner: Box::new(EngineKind::Auto),
            },
        );
        let fc = Close::new().mine(&sharded, MinSupport::Count(3));
        assert_eq!(fc.into_sorted_vec(), reference.clone().into_sorted_vec(),);
    }
}
