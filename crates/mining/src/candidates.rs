//! Levelwise candidate generation (the Apriori join + prune step), shared
//! by Apriori, Close, A-Close, and the minimal-generator miner.

use rulebases_dataset::Itemset;
use std::collections::HashSet;

/// Generates the candidate `k`-itemsets from the frequent `(k-1)`-itemsets.
///
/// `previous` must contain itemsets of equal size `k-1`, sorted
/// lexicographically (`Itemset`'s canonical order restricted to one size is
/// lexicographic). Two sets sharing their first `k-2` items are joined; a
/// candidate survives only if **every** `(k-1)`-facet appears in
/// `previous` (the antimonotonicity prune). The output is sorted.
pub fn join_and_prune(previous: &[Itemset]) -> Vec<Itemset> {
    if previous.len() < 2 {
        return Vec::new();
    }
    let k_minus_1 = previous[0].len();
    debug_assert!(previous.iter().all(|s| s.len() == k_minus_1));
    debug_assert!(previous.windows(2).all(|w| w[0] < w[1]), "input not sorted");

    let member: HashSet<&Itemset> = previous.iter().collect();
    let mut candidates = Vec::new();

    // Group by shared (k-2)-prefix; within a group items differ only in the
    // last element, in increasing order.
    let mut group_start = 0;
    while group_start < previous.len() {
        let prefix = &previous[group_start].as_slice()[..k_minus_1 - 1];
        let mut group_end = group_start + 1;
        while group_end < previous.len()
            && &previous[group_end].as_slice()[..k_minus_1 - 1] == prefix
        {
            group_end += 1;
        }
        for i in group_start..group_end {
            for j in (i + 1)..group_end {
                let candidate = previous[i].union(&previous[j]);
                debug_assert_eq!(candidate.len(), k_minus_1 + 1);
                if candidate.facets().all(|facet| member.contains(&facet)) {
                    candidates.push(candidate);
                }
            }
        }
        group_start = group_end;
    }
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::from_ids(ids.iter().copied())
    }

    #[test]
    fn joins_singletons_into_pairs() {
        let l1 = vec![set(&[1]), set(&[2]), set(&[3])];
        let c2 = join_and_prune(&l1);
        assert_eq!(c2, vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])]);
    }

    #[test]
    fn prunes_candidates_with_missing_facets() {
        // {1,2}, {1,3} join to {1,2,3}, but {2,3} is absent → pruned.
        let l2 = vec![set(&[1, 2]), set(&[1, 3])];
        assert!(join_and_prune(&l2).is_empty());

        // With {2,3} present the candidate survives.
        let l2 = vec![set(&[1, 2]), set(&[1, 3]), set(&[2, 3])];
        assert_eq!(join_and_prune(&l2), vec![set(&[1, 2, 3])]);
    }

    #[test]
    fn only_joins_shared_prefixes() {
        let l2 = vec![set(&[1, 2]), set(&[3, 4])];
        assert!(join_and_prune(&l2).is_empty());
    }

    #[test]
    fn empty_and_single_input() {
        assert!(join_and_prune(&[]).is_empty());
        assert!(join_and_prune(&[set(&[1])]).is_empty());
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let l1: Vec<Itemset> = (0..6u32).map(|i| set(&[i])).collect();
        let c2 = join_and_prune(&l1);
        assert_eq!(c2.len(), 15);
        assert!(c2.windows(2).all(|w| w[0] < w[1]));
    }
}
