//! Generator-maintenance invariants through the whole stack.
//!
//! The contract of the delta-sized tag maintenance: over *any* engine
//! backend, *any* batch schedule, and *any* window policy, a streaming
//! replay keeps the minimal-generator tags with the local
//! extension/subsumption rules alone — every `BasesDelta` reports zero
//! transversal fallbacks, the per-batch work counters sum to the
//! session's lifetime tally, and the maintained tags land exactly on the
//! ones a from-scratch fused mine (whose generators the levelwise miner
//! proves independently) derives for the same window of rows. A second
//! pin replays a sliding window directly against the raw lattice and
//! checks the maintained tags against the retained transversal oracle
//! after every mutation.
//!
//! Case counts respect the `PROPTEST_CASES` environment variable so the
//! 1-CPU suite stays inside its budget.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases::lattice::IncrementalLattice;
use rulebases::{GenStats, PipelineKind, RuleMiner, Window};
use rulebases_dataset::{EngineKind, Itemset, MinSupport, TransactionDb};
use std::collections::VecDeque;

/// The batch schedules the streaming suite pins: row-at-a-time, a ragged
/// prime, the 64-aligned shard quantum, and everything at once.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, usize::MAX];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn replay_spends_zero_fallbacks_and_lands_on_freshly_proven_tags(
        rows in vec(vec(0u32..9, 0..6), 1..40),
        window_kind in 0usize..3,
        window in 1usize..12,
        batch_idx in 0usize..4,
        shards in 1usize..=3,
    ) {
        let batch = BATCH_SIZES[batch_idx].min(rows.len());
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let miner = RuleMiner::new(MinSupport::Count(1))
                .min_confidence(0.5)
                .engine(kind.clone());
            let mut stream = miner.clone().streaming(TransactionDb::from_rows(vec![]));
            match window_kind {
                1 => stream.set_window(Window::Sliding(window)),
                2 => stream.set_window(Window::Ttl(1 + window / 4)),
                _ => {}
            }
            let mut batched = GenStats::default();
            let mut kept: Vec<Vec<Vec<u32>>> = Vec::new();
            for chunk in rows.chunks(batch) {
                let delta = stream.push_batch(chunk.to_vec()).unwrap();
                prop_assert_eq!(
                    delta.gen.transversal_fallbacks, 0,
                    "{} batch fell back to the transversal oracle", kind
                );
                batched.absorb(delta.gen);
                kept.push(chunk.to_vec());
            }
            let lifetime = stream.gen_stats();
            prop_assert_eq!(batched, lifetime, "{}: batch deltas must sum", kind);
            prop_assert_eq!(lifetime.transversal_fallbacks, 0);

            // The rows the window retained, per policy.
            let window_rows: Vec<Vec<u32>> = match window_kind {
                1 => {
                    let all: Vec<Vec<u32>> = kept.into_iter().flatten().collect();
                    all[all.len().saturating_sub(window)..].to_vec()
                }
                2 => {
                    let keep = 1 + window / 4;
                    kept[kept.len().saturating_sub(keep)..]
                        .iter()
                        .flatten()
                        .cloned()
                        .collect()
                }
                _ => kept.into_iter().flatten().collect(),
            };
            prop_assert_eq!(stream.n_objects(), window_rows.len());

            // The maintained tags must be exactly what a from-scratch
            // fused mine proves for the same rows, class by class.
            let fresh = miner
                .pipeline(PipelineKind::Fused)
                .mine(TransactionDb::from_rows(window_rows));
            let streamed = stream.bases();
            let stags = streamed.minimal_generators.as_ref().unwrap();
            let ftags = fresh.minimal_generators.as_ref().unwrap();
            prop_assert_eq!(streamed.lattice.n_nodes(), fresh.lattice.n_nodes());
            prop_assert_eq!(stags.len(), streamed.lattice.n_nodes());
            for (node, tags) in stags.iter().enumerate() {
                let (closure, support) = streamed.lattice.node(node);
                let fnode = fresh
                    .lattice
                    .position(closure)
                    .expect("streamed class missing from the fresh mine");
                prop_assert_eq!(fresh.lattice.node(fnode).1, support);
                let mut maintained = tags.clone();
                let mut proven = ftags[fnode].clone();
                maintained.sort();
                proven.sort();
                prop_assert_eq!(
                    maintained, proven,
                    "{}: tag divergence at {:?}", kind, closure
                );
            }
        }
    }
}

/// The raw-lattice pin: a sliding replay of correlated rows checked
/// against the retained transversal oracle after **every** insert and
/// expiry, not just at the end.
#[test]
fn sliding_raw_replay_matches_the_oracle_at_every_step() {
    let rows: Vec<Vec<u32>> = (0..96u32)
        .map(|t| vec![t % 4, 4 + t % 3, 7 + t % 2, 9 + (t / 7) % 5])
        .collect();
    let mut inc = IncrementalLattice::new();
    let mut in_window: VecDeque<Itemset> = VecDeque::new();
    let check = |inc: &IncrementalLattice| {
        for id in 0..inc.n_nodes() {
            if inc.is_live(id) {
                assert_eq!(
                    inc.generator_tags(id).to_vec(),
                    inc.oracle_generators_of(id),
                    "node {id} diverged from the oracle"
                );
            }
        }
    };
    for row in rows {
        let object = Itemset::from_ids(row);
        inc.insert_object(&object);
        in_window.push_back(object);
        check(&inc);
        if in_window.len() > 24 {
            let oldest = in_window.pop_front().unwrap();
            inc.remove_object(&oldest);
            check(&inc);
        }
    }
    let stats = inc.gen_stats();
    assert_eq!(stats.transversal_fallbacks, 0);
    assert!(stats.candidates > 0 && stats.subsumption_checks > 0);
}
