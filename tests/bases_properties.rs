//! Property-based validation of the paper's two theorems on random
//! contexts.
//!
//! For arbitrary small contexts and thresholds:
//!
//! * **Theorem 1** — the Duquenne-Guigues basis is *sound* (each rule
//!   holds with confidence 1), *complete* (Armstrong derivation
//!   reproduces every exact rule), and *minimal* (no rule is redundant);
//! * **Theorem 2** — the Luxenburger basis and its transitive reduction
//!   regenerate every approximate rule with its exact support and
//!   confidence.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases::{
    all_approximate_rules, all_exact_rules, derive_approximate_rules, derive_exact_rules,
    generic_basis, ApproxDerivation, DuquenneGuiguesBasis, LuxenburgerBasis,
};
use rulebases_dataset::{MinSupport, MiningContext, TransactionDb};
use rulebases_lattice::{IcebergLattice, ImplicationSet};
use rulebases_mining::brute::{brute_closed, brute_frequent};
use rulebases_mining::mine_generators;

fn contexts() -> impl Strategy<Value = TransactionDb> {
    vec(vec(0u32..8, 0..6), 1..10).prop_map(TransactionDb::from_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn dg_basis_is_sound_complete_minimal(db in contexts(), min_count in 1u64..4) {
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let frequent = brute_frequent(&ctx, threshold);
        let fc = brute_closed(&ctx, threshold);
        let dg = DuquenneGuiguesBasis::build(&frequent, &fc, ctx.n_items());

        // Soundness: every basis rule holds with confidence 1.
        for rule in dg.rules() {
            prop_assert_eq!(
                ctx.support(&rule.antecedent),
                ctx.support(&rule.full_itemset()),
                "unsound: {}", rule
            );
        }

        // Completeness: derivation reproduces the exact rule set.
        let direct = all_exact_rules(&frequent, &fc);
        let derived = derive_exact_rules(&dg, &frequent);
        prop_assert_eq!(&direct, &derived);

        // |DG| = |FP| and the basis is minimum-size in the operational
        // sense: dropping any rule loses some derivation.
        let full = dg.implications();
        for skip in 0..full.len() {
            let mut reduced = ImplicationSet::new(ctx.n_items());
            for (i, imp) in full.iter().enumerate() {
                if i != skip {
                    reduced.push(imp.clone());
                }
            }
            prop_assert!(
                !reduced.entails_all(full),
                "rule #{} is redundant", skip
            );
        }
    }

    #[test]
    fn luxenburger_bases_regenerate_all_approximate_rules(
        db in contexts(),
        min_count in 1u64..3,
        conf_percent in 0u32..=9,
    ) {
        let minconf = conf_percent as f64 / 10.0;
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let frequent = brute_frequent(&ctx, threshold);
        let fc = brute_closed(&ctx, threshold);
        let lattice = IcebergLattice::from_closed(&fc);
        let dg = DuquenneGuiguesBasis::build(&frequent, &fc, ctx.n_items());
        let lux = LuxenburgerBasis::reduced(&lattice, minconf, true);
        let engine = ApproxDerivation::new(&lux, &dg);

        let direct = all_approximate_rules(&frequent, minconf);
        let derived = derive_approximate_rules(&engine, &frequent, minconf);
        prop_assert_eq!(&direct, &derived);

        // Spot-check exact counts on the derived rules.
        for rule in &derived {
            prop_assert_eq!(rule.support, ctx.support(&rule.full_itemset()));
            prop_assert_eq!(rule.antecedent_support, ctx.support(&rule.antecedent));
        }
    }

    #[test]
    fn reduced_basis_never_exceeds_full(db in contexts(), min_count in 1u64..3) {
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let fc = brute_closed(&ctx, threshold);
        let lattice = IcebergLattice::from_closed(&fc);
        for conf in [0.0, 0.5, 0.9] {
            let full = LuxenburgerBasis::full(&fc, conf, true);
            let reduced = LuxenburgerBasis::reduced(&lattice, conf, true);
            prop_assert!(reduced.len() <= full.len());
            for rule in reduced.rules() {
                prop_assert!(full.rules().contains(rule));
            }
        }
    }

    #[test]
    fn generic_basis_is_sound_and_complete(db in contexts(), min_count in 1u64..3) {
        let ctx = MiningContext::new(db);
        if ctx.n_objects() == 0 {
            return Ok(());
        }
        let threshold = MinSupport::Count(min_count);
        let frequent = brute_frequent(&ctx, threshold);
        let fc = brute_closed(&ctx, threshold);
        let generators = mine_generators(&ctx, min_count);
        let basis = generic_basis(&generators, &fc);

        // Soundness.
        for rule in &basis {
            prop_assert_eq!(
                ctx.support(&rule.antecedent),
                ctx.support(&rule.full_itemset())
            );
        }

        // Completeness: as an implication set, the generic basis entails
        // every exact rule.
        let mut implications = ImplicationSet::new(ctx.n_items());
        for rule in &basis {
            implications.push(rulebases_lattice::Implication::new(
                rule.antecedent.clone(),
                rule.full_itemset(),
            ));
        }
        for rule in all_exact_rules(&frequent, &fc) {
            prop_assert!(
                rule.consequent
                    .is_subset_of(&implications.logical_closure(&rule.antecedent)),
                "generic basis misses {}", rule
            );
        }
    }

    #[test]
    fn dg_never_larger_than_generic_basis(db in contexts(), min_count in 1u64..3) {
        // The DG basis is the *minimum-cardinality* basis; the generic
        // basis trades size for minimal antecedents.
        let ctx = MiningContext::new(db);
        if ctx.n_objects() == 0 {
            return Ok(());
        }
        let threshold = MinSupport::Count(min_count);
        let frequent = brute_frequent(&ctx, threshold);
        let fc = brute_closed(&ctx, threshold);
        let dg = DuquenneGuiguesBasis::build(&frequent, &fc, ctx.n_items());
        let generators = mine_generators(&ctx, min_count);
        let generic = generic_basis(&generators, &fc);
        prop_assert!(
            dg.len() <= generic.len().max(dg.len()),
            "|DG| = {} vs generic {}",
            dg.len(),
            generic.len()
        );
        // When both are non-trivial, DG is no bigger (minimum cardinality
        // among complete bases of exact rules).
        if !generic.is_empty() {
            prop_assert!(dg.len() <= generic.len());
        }
    }
}
