//! End-to-end pipeline tests: every stand-in dataset through the full
//! bases pipeline at reduced scale, checking the structural invariants
//! the paper's experiments rely on.

use rulebases::{count_all_rules, count_exact_rules, MinSupport, PipelineKind, RuleMiner};
use rulebases_bench::{Scale, StandIn};
use rulebases_dataset::MiningContext;
use rulebases_lattice::hasse::verify_covers;

#[test]
fn every_dataset_mines_cleanly() {
    for dataset in StandIn::ALL {
        let bases = RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
            .min_confidence(0.7)
            .mine(dataset.generate(Scale::Test));

        // FC is a subset of F (modulo the empty bottom).
        assert!(
            bases.n_closed_nonempty() <= bases.frequent.len(),
            "{}: |FC| > |F|",
            dataset.name()
        );
        // The DG basis never exceeds the exact-rule count.
        let n_exact = count_exact_rules(&bases.frequent, &bases.closed);
        assert!(
            bases.dg.len() as u64 <= n_exact,
            "{}: DG bigger than exact set",
            dataset.name()
        );
        // Reduced basis ≤ full basis.
        assert!(
            bases.luxenburger_reduced_rules().len() <= bases.lux_full.len(),
            "{}: reduction grew",
            dataset.name()
        );
    }
}

#[test]
fn dense_datasets_compress_sparse_do_not() {
    let ratio = |dataset: StandIn| {
        let minsup = dataset.default_minsup();
        let bases =
            RuleMiner::new(MinSupport::Fraction(minsup)).mine(dataset.generate(Scale::Test));
        bases.frequent.len() as f64 / bases.n_closed_nonempty().max(1) as f64
    };
    let sparse = ratio(StandIn::T10I4);
    let mushrooms = ratio(StandIn::Mushrooms);
    let census = ratio(StandIn::C20D10K);
    // The paper's headline shape: closed sets compress the dense datasets
    // by a large factor and the sparse ones barely at all.
    assert!(sparse < 1.5, "sparse ratio {sparse}");
    assert!(mushrooms > 3.0, "mushrooms ratio {mushrooms}");
    assert!(census > 3.0, "census ratio {census}");
}

#[test]
fn derivation_round_trips_on_real_datasets() {
    // The expensive check on the two datasets with the richest structure.
    for dataset in [StandIn::Mushrooms, StandIn::C20D10K] {
        let bases = RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
            .min_confidence(0.7)
            .mine(dataset.generate(Scale::Test));
        assert_eq!(
            bases.exact_rules(),
            bases.derive_exact_rules(),
            "{}: exact derivation mismatch",
            dataset.name()
        );
        assert_eq!(
            bases.approximate_rules(),
            bases.derive_approximate_rules(),
            "{}: approximate derivation mismatch",
            dataset.name()
        );
    }
}

#[test]
fn lattice_is_a_valid_hasse_diagram() {
    for dataset in [StandIn::Mushrooms, StandIn::C73D10K] {
        let bases = RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
            .mine(dataset.generate(Scale::Test));
        let nodes: Vec<_> = bases
            .closed
            .iter()
            .map(|(s, sup)| (s.clone(), sup))
            .collect();
        let upper: Vec<Vec<usize>> = (0..bases.lattice.n_nodes())
            .map(|i| bases.lattice.upper_covers(i).to_vec())
            .collect();
        verify_covers(&nodes, &upper).unwrap_or_else(|e| panic!("{}: {e}", dataset.name()));
    }
}

#[test]
fn rule_counts_are_monotone_in_confidence() {
    let dataset = StandIn::Mushrooms;
    let bases = RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
        .mine(dataset.generate(Scale::Test));
    let mut last = usize::MAX;
    for conf in [0.5, 0.7, 0.9, 1.0] {
        let n = count_all_rules(&bases.frequent, conf);
        assert!(n <= last, "counts increased at conf {conf}");
        last = n;
    }
}

#[test]
fn closed_supports_match_context_on_every_dataset() {
    for dataset in StandIn::ALL {
        let db = dataset.generate(Scale::Test);
        let ctx = MiningContext::new(db);
        let bases =
            RuleMiner::new(MinSupport::Fraction(dataset.default_minsup())).mine_context(&ctx);
        for (set, support) in bases.closed.iter() {
            assert_eq!(
                ctx.support(set),
                support,
                "{}: support mismatch for {set:?}",
                dataset.name()
            );
            assert!(ctx.is_closed(set), "{}: {set:?} not closed", dataset.name());
        }
    }
}

#[test]
fn fused_pipeline_matches_staged_on_every_dataset() {
    // The one-pass fused pipeline and the staged oracle agree on every
    // stand-in, at realistic (non-toy) lattice sizes.
    for dataset in StandIn::ALL {
        let run = |pipeline: PipelineKind| {
            RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
                .min_confidence(0.7)
                .pipeline(pipeline)
                .mine(dataset.generate(Scale::Test))
        };
        let staged = run(PipelineKind::Staged);
        let fused = run(PipelineKind::Fused);
        assert_eq!(
            staged.closed.clone().into_sorted_vec(),
            fused.closed.clone().into_sorted_vec(),
            "{}: closed sets",
            dataset.name()
        );
        assert_eq!(
            staged.lattice.edges().collect::<Vec<_>>(),
            fused.lattice.edges().collect::<Vec<_>>(),
            "{}: Hasse edges",
            dataset.name()
        );
        assert_eq!(
            staged.frequent.len(),
            fused.frequent.len(),
            "{}: |F|",
            dataset.name()
        );
        assert_eq!(staged.dg.rules(), fused.dg.rules(), "{}", dataset.name());
        assert_eq!(
            staged.lux_full.rules(),
            fused.lux_full.rules(),
            "{}",
            dataset.name()
        );
        assert_eq!(
            staged.lux_reduced.rules(),
            fused.lux_reduced.rules(),
            "{}",
            dataset.name()
        );
    }
}

#[test]
fn fused_pipeline_performs_fewer_engine_calls_on_census() {
    // The acceptance criterion of the fused tentpole, enforced in CI: on
    // the census-like stand-in the fused pipeline answers every query
    // through strictly fewer engine calls than the staged oracle — it
    // neither re-mines the frequent itemsets from the database nor
    // rebuilds the lattice after mining.
    let dataset = StandIn::C20D10K;
    let tally = |pipeline: PipelineKind| {
        let ctx = MiningContext::new(dataset.generate(Scale::Test));
        let _ = RuleMiner::new(MinSupport::Fraction(dataset.default_minsup()))
            .min_confidence(0.7)
            .pipeline(pipeline)
            .mine_context(&ctx);
        ctx.closure_cache_stats()
    };
    let staged = tally(PipelineKind::Staged);
    let fused = tally(PipelineKind::Fused);
    assert!(
        fused.engine_calls() < staged.engine_calls(),
        "fused {} !< staged {}",
        fused.engine_calls(),
        staged.engine_calls()
    );
}

#[test]
fn io_round_trip_preserves_mining_results() {
    // Write a stand-in to FIMI format, read it back, and check the bases
    // are identical.
    let db = StandIn::C20D10K.generate(Scale::Test);
    let mut buffer = Vec::new();
    rulebases_dataset::io::write_dat(&db, &mut buffer).unwrap();
    let back = rulebases_dataset::io::read_dat(&buffer[..]).unwrap();

    let a = RuleMiner::new(MinSupport::Fraction(0.6)).mine(db);
    let b = RuleMiner::new(MinSupport::Fraction(0.6)).mine(back);
    assert_eq!(a.closed.into_sorted_vec(), b.closed.into_sorted_vec());
    assert_eq!(a.dg.rules(), b.dg.rules());
}
