//! Property-based cross-algorithm equivalence on random contexts.
//!
//! Every real miner must agree with the brute-force oracle (and therefore
//! with each other) on arbitrary small contexts — the strongest guard
//! against algorithm-specific bugs (candidate pruning, closure jumps,
//! CHARM's subsumption check, hash-tree collisions…).

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::TestCaseError;
use rulebases::{MinedBases, PipelineKind, RuleMiner};
use rulebases_dataset::{
    EngineKind, Itemset, MinSupport, MiningContext, Parallelism, ShardedEngine, TransactionDb,
};
use rulebases_mining::brute::{brute_closed, brute_frequent};
use rulebases_mining::{
    mine_generators, Apriori, ClosedAlgorithm, CountingStrategy, FpGrowth, FrequentMiner,
};
use std::sync::Arc;

/// A random context: up to 12 objects over up to 9 items (ids can exceed
/// the bucket fanout of the hash tree via the stride).
fn contexts() -> impl Strategy<Value = TransactionDb> {
    (
        vec(vec(0u32..9, 0..6), 1..12),
        1u32..5, // item-id stride, to exercise sparse universes
    )
        .prop_map(|(rows, stride)| {
            TransactionDb::from_rows(
                rows.into_iter()
                    .map(|row| row.into_iter().map(|i| i * stride).collect())
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn apriori_matches_brute_force(db in contexts(), min_count in 1u64..4) {
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let brute = brute_frequent(&ctx, threshold);
        for strategy in [
            CountingStrategy::SubsetHash,
            CountingStrategy::HashTree,
            CountingStrategy::Vertical,
        ] {
            let mined = Apriori::with_counting(strategy).mine_frequent(&ctx, threshold);
            prop_assert_eq!(mined.len(), brute.len(), "{:?}", strategy);
            for (set, support) in brute.iter() {
                prop_assert_eq!(mined.support(set), Some(support), "{:?} on {:?}", strategy, set);
            }
        }
        // FP-growth, the pattern-growth baseline, must agree too.
        let fp = FpGrowth::new().mine_frequent(&ctx, threshold);
        prop_assert_eq!(fp.len(), brute.len(), "fp-growth cardinality");
        for (set, support) in brute.iter() {
            prop_assert_eq!(fp.support(set), Some(support), "fp-growth on {:?}", set);
        }
    }

    #[test]
    fn closed_miners_match_brute_force(db in contexts(), min_count in 1u64..4) {
        let ctx = MiningContext::new(db);
        let threshold = MinSupport::Count(min_count);
        let brute = brute_closed(&ctx, threshold).into_sorted_vec();
        for algo in ClosedAlgorithm::ALL {
            let mined = algo.mine(&ctx, threshold).into_sorted_vec();
            prop_assert_eq!(&mined, &brute, "{} disagrees with brute force", algo);
        }
    }

    #[test]
    fn closed_miners_agree_under_every_backend(
        db in contexts(),
        min_count in 1u64..4,
        shards in 1usize..=5,
    ) {
        // The full (algorithm × representation) grid returns one answer:
        // every closed miner over every SupportEngine backend — the three
        // serial representations plus row-sharded configurations —
        // matches the brute-force oracle.
        let threshold = MinSupport::Count(min_count);
        let reference = {
            let ctx = MiningContext::new(db.clone());
            brute_closed(&ctx, threshold).into_sorted_vec()
        };
        let shared = Arc::new(db);
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let engine = kind.build(&shared);
            for algo in ClosedAlgorithm::ALL {
                let mined = algo.mine_engine(engine.as_ref(), threshold).into_sorted_vec();
                prop_assert_eq!(
                    &mined, &reference,
                    "{} over {} disagrees with brute force", algo, kind
                );
            }
        }
        // The sharded engine with a forced thread fan-out (and per-shard
        // caches) must answer identically too, under every algorithm.
        let fanned = ShardedEngine::with_shard_caches(&shared, shards, &EngineKind::Auto)
            .parallelism(Parallelism::Fixed(shards.min(3)));
        for algo in ClosedAlgorithm::ALL {
            let mined = algo
                .mine_engine_par(&fanned, threshold, Parallelism::Fixed(2))
                .into_sorted_vec();
            prop_assert_eq!(
                &mined, &reference,
                "{} over fanned sharded({}) disagrees with brute force", algo, shards
            );
        }
    }

    #[test]
    fn fused_pipeline_matches_staged_under_every_backend(
        db in contexts(),
        min_count in 1u64..4,
        minconf_idx in 0usize..4,
        shards in 1usize..=4,
    ) {
        let minconf = [0.0, 0.5, 0.8, 1.0][minconf_idx];
        // The fused one-pass pipeline and the staged oracle must agree on
        // every product — closed sets, Hasse edges, DG basis, both
        // Luxenburger bases — whatever the algorithm and engine backend.
        let shared = Arc::new(db);
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            for algo in ClosedAlgorithm::ALL {
                let run = |pipeline: PipelineKind| {
                    let ctx = MiningContext::with_engine_arc(shared.clone(), kind.clone());
                    RuleMiner::new(MinSupport::Count(min_count))
                        .min_confidence(minconf)
                        .algorithm(algo)
                        .pipeline(pipeline)
                        .mine_context(&ctx)
                };
                let staged = run(PipelineKind::Staged);
                let fused = run(PipelineKind::Fused);
                assert_pipelines_agree(&staged, &fused, &format!("{algo} over {kind}"))
                    .map_err(TestCaseError::fail)?;
            }
        }
    }

    #[test]
    fn closure_axioms_hold(db in contexts(), ids in vec(0u32..9, 0..5)) {
        let ctx = MiningContext::new(db);
        // The closure operator is only defined on subsets of the universe.
        let x = Itemset::from_ids(
            ids.into_iter().filter(|&i| (i as usize) < ctx.n_items()),
        );
        let hx = ctx.closure(&x);
        // Extensive.
        prop_assert!(x.is_subset_of(&hx));
        // Idempotent.
        prop_assert_eq!(ctx.closure(&hx), hx.clone());
        // Support-preserving.
        prop_assert_eq!(ctx.support(&x), ctx.support(&hx));
        // Monotone (against a random superset).
        let y = hx.union(&x);
        prop_assert!(ctx.closure(&x).is_subset_of(&ctx.closure(&y)));
    }

    #[test]
    fn generators_are_minimal_and_cover_fc(db in contexts(), min_count in 1u64..3) {
        let ctx = MiningContext::new(db);
        if ctx.n_objects() == 0 {
            return Ok(());
        }
        let generators = mine_generators(&ctx, min_count);
        let fc = brute_closed(&ctx, MinSupport::Count(min_count));
        // Every generator is minimal: no facet with equal support.
        for (g, support) in generators.iter() {
            prop_assert_eq!(ctx.support(g), support);
            for facet in g.facets() {
                prop_assert_ne!(ctx.support(&facet), support, "{:?} not minimal", g);
            }
        }
        // Closures of generators cover FC exactly.
        let mut closures: Vec<Itemset> =
            generators.iter().map(|(g, _)| ctx.closure(g)).collect();
        closures.sort();
        closures.dedup();
        let mut expected: Vec<Itemset> = fc.iter().map(|(s, _)| s.clone()).collect();
        expected.sort();
        prop_assert_eq!(closures, expected);
    }

    #[test]
    fn engine_and_horizontal_supports_agree(db in contexts(), ids in vec(0u32..9, 0..4)) {
        let x = Itemset::from_ids(ids);
        for kind in EngineKind::BACKENDS {
            let ctx = MiningContext::with_engine(db.clone(), kind.clone());
            prop_assert_eq!(
                ctx.engine().support(&x),
                ctx.horizontal().support(&x),
                "{} backend", kind
            );
        }
    }
}

/// Every product of a bases run the two pipelines must agree on.
fn assert_pipelines_agree(
    staged: &MinedBases,
    fused: &MinedBases,
    label: &str,
) -> Result<(), String> {
    let check = |ok: bool, what: &str| {
        if ok {
            Ok(())
        } else {
            Err(format!("{label}: fused and staged disagree on {what}"))
        }
    };
    check(
        staged.closed.clone().into_sorted_vec() == fused.closed.clone().into_sorted_vec(),
        "closed sets",
    )?;
    check(
        staged.lattice.edges().collect::<Vec<_>>() == fused.lattice.edges().collect::<Vec<_>>(),
        "Hasse edges",
    )?;
    // The frequent itemsets are mined (staged) vs derived (fused) —
    // identical contents either way.
    check(staged.frequent.len() == fused.frequent.len(), "|F|")?;
    for (set, support) in staged.frequent.iter() {
        check(
            fused.frequent.support(set) == Some(support),
            &format!("support of {set:?}"),
        )?;
    }
    check(staged.dg.rules() == fused.dg.rules(), "DG basis")?;
    check(
        staged.lux_full.rules() == fused.lux_full.rules(),
        "full Luxenburger basis",
    )?;
    check(
        staged.lux_reduced.rules() == fused.lux_reduced.rules(),
        "reduced Luxenburger basis",
    )?;
    Ok(())
}

/// The fused pipeline on a context whose closure of ∅ is non-empty (a
/// constant column): the lattice bottom is not ∅, the DG basis carries
/// the `∅ → h(∅)` rule, and both pipelines still agree — including at the
/// minconf = 1.0 boundary, where every Luxenburger basis is empty but the
/// derivations must not fall over.
#[test]
fn fused_handles_nonempty_bottom_and_minconf_one() {
    // Item 9 occurs everywhere: h(∅) = {9}.
    let rows: Vec<Vec<u32>> = (0..12u32).map(|t| vec![t % 3, 3 + t % 2, 9]).collect();
    for minconf in [0.6, 1.0] {
        for algo in ClosedAlgorithm::ALL {
            let run = |pipeline: PipelineKind| {
                RuleMiner::new(MinSupport::Count(2))
                    .min_confidence(minconf)
                    .algorithm(algo)
                    .pipeline(pipeline)
                    .mine(TransactionDb::from_rows(rows.clone()))
            };
            let staged = run(PipelineKind::Staged);
            let fused = run(PipelineKind::Fused);
            assert_pipelines_agree(&staged, &fused, &format!("{algo} at minconf {minconf}"))
                .unwrap();
            // The bottom is {9}, and the DG basis starts from ∅.
            let bottom = fused.lattice.bottom();
            assert_eq!(fused.lattice.node(bottom).0, &Itemset::from_ids([9]));
            assert!(fused
                .dg
                .rules()
                .iter()
                .any(|r| r.antecedent.is_empty()
                    && Itemset::from_ids([9]).is_subset_of(&r.consequent)));
            if (minconf - 1.0).abs() < f64::EPSILON {
                // Closed-set pairs are never exact: both bases are empty.
                assert!(fused.lux_full.is_empty());
                assert!(fused.luxenburger_reduced_rules().is_empty());
            }
            // Derivations round-trip on the fused bundle.
            assert_eq!(fused.exact_rules(), fused.derive_exact_rules(), "{algo}");
            assert_eq!(
                fused.approximate_rules(),
                fused.derive_approximate_rules(),
                "{algo} at minconf {minconf}"
            );
        }
    }
}
