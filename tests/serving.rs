//! Serving-layer contracts: the antecedent index against brute force,
//! and snapshot coherence under a concurrent writer.
//!
//! Two families:
//!
//! * **Index correctness.** `match_basket` is pinned against a
//!   brute-force subset filter computed directly from `MinedBases`
//!   (never through the snapshot's own index), across every engine
//!   backend (the three serial ones plus a sharded configuration) ×
//!   absolute and fractional thresholds × confidence levels. The linear
//!   in-snapshot oracle, the top-k prefix property, and the
//!   fewer-comparisons claim ride the same grid.
//! * **Publication coherence.** A writer appends batches while reader
//!   threads query concurrently; every observed `(epoch, n_objects,
//!   n_rules)` triple must be one the writer actually published — epoch
//!   `N` or `N+1`, never a torn mix — and each reader's observed epochs
//!   must be monotone.
//!
//! Case counts respect the `PROPTEST_CASES` environment variable so the
//! 1-CPU suite stays inside its budget.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases::serve::{ServedBasis, ServingSnapshot};
use rulebases::{MinedBases, Rule, RuleMiner};
use rulebases_dataset::pool::fan_out;
use rulebases_dataset::{EngineKind, Item, MinSupport, TransactionDb};
use std::sync::Mutex;

/// Deterministic correlated rows over 14 items (the census stand-in).
fn census_rows(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|t| vec![t % 4, 4 + t % 3, 7 + t % 2, 9 + (t / 7) % 5])
        .collect()
}

/// The rules a `Compact` snapshot serves, reconstructed from the mined
/// bundle without going through the serving index.
fn served_rules(bases: &MinedBases) -> Vec<Rule> {
    let mut rules: Vec<Rule> = bases.dg.rules().to_vec();
    rules.extend(bases.luxenburger_reduced_rules().into_iter().cloned());
    rules.sort();
    rules.dedup();
    rules
}

/// Brute force: which served rules fire on `basket`, by a direct
/// antecedent-subset test.
fn brute_force_fired(rules: &[Rule], basket: &[u32]) -> Vec<Rule> {
    rules
        .iter()
        .filter(|r| r.antecedent.iter().all(|i| basket.contains(&i.id())))
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn match_basket_equals_brute_force_over_mined_bases(
        rows in vec(vec(0u32..9, 0..6), 1..40),
        min_count in 1u64..3,
        fractional in 0usize..2,
        minconf_idx in 0usize..3,
        baskets in vec(vec(0u32..12, 0..6), 1..5),
        shards in 1usize..=3,
    ) {
        let minsup = if fractional == 1 {
            MinSupport::Fraction(0.25)
        } else {
            MinSupport::Count(min_count)
        };
        let minconf = [0.0, 0.5, 1.0][minconf_idx];
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let miner = RuleMiner::new(minsup)
                .min_confidence(minconf)
                .engine(kind.clone());
            let bases = miner.mine(TransactionDb::from_rows(rows.clone()));
            let expected_catalogue = served_rules(&bases);
            let snap = ServingSnapshot::from_bases(&bases, ServedBasis::Compact, 0);
            prop_assert_eq!(
                snap.n_rules(),
                expected_catalogue.len(),
                "catalogue size under {}", kind
            );
            for basket in &baskets {
                // Index vs brute force over the mined bundle.
                let mut fired: Vec<Rule> =
                    snap.match_basket(basket).into_iter().cloned().collect();
                fired.sort();
                let mut expected = brute_force_fired(&expected_catalogue, basket);
                expected.sort();
                prop_assert_eq!(
                    &fired, &expected,
                    "basket {:?} under {}", basket, kind
                );
                // Index vs the in-snapshot linear-scan oracle, plus the
                // sub-linear claim: the merge never examines more
                // candidates than the scan does rules.
                let (ids, cost) = snap.match_basket_counted(basket);
                let (linear_ids, linear_scanned) = snap.match_basket_linear(basket);
                prop_assert_eq!(&ids, &linear_ids);
                prop_assert!(cost.rules_scanned <= linear_scanned);
                // Score order: confidence never increases along the hits.
                let hits: Vec<&Rule> = ids.iter().map(|&id| snap.rule(id)).collect();
                for pair in hits.windows(2) {
                    prop_assert!(
                        pair[0].confidence() >= pair[1].confidence() - 1e-12
                    );
                }
                // Top-k is a prefix of the full match for every k.
                for k in [0, 1, 2, ids.len(), ids.len() + 3] {
                    let top: Vec<Rule> =
                        snap.top_k(basket, k).into_iter().cloned().collect();
                    let prefix: Vec<Rule> = ids[..k.min(ids.len())]
                        .iter()
                        .map(|&id| snap.rule(id).clone())
                        .collect();
                    prop_assert_eq!(top, prefix, "k={} basket {:?}", k, basket);
                }
                // Recommendations never re-propose basket items.
                for rec in snap.recommend(basket, 4) {
                    prop_assert!(!basket.contains(&rec.item));
                    prop_assert!(
                        snap.rule(rec.rule_id).consequent.contains(Item::new(rec.item))
                    );
                }
            }
        }
    }
}

/// The publication-coherence test: one writer appending while readers
/// query. Readers must only ever observe `(epoch, n_objects, n_rules)`
/// triples the writer actually published, with per-reader epochs
/// monotone — the "epoch N or N+1, never torn" invariant, witnessed
/// under real thread interleaving.
#[test]
fn readers_observe_only_published_coherent_epochs() {
    const READERS: usize = 4;
    const SEED: usize = 32;
    const BATCHES: usize = 8;
    const BATCH_ROWS: usize = 8;
    const QUERIES_PER_READER: usize = 400;

    let miner = RuleMiner::new(MinSupport::Fraction(0.2)).min_confidence(0.3);
    let server = miner.serving(TransactionDb::from_rows(census_rows(SEED)));
    let snapshot_key = |s: &ServingSnapshot| (s.epoch(), s.n_objects(), s.n_rules());
    let published = Mutex::new(vec![snapshot_key(server.snapshot().as_ref())]);
    let lanes: Vec<Mutex<rulebases::RuleReader>> =
        (0..READERS).map(|_| Mutex::new(server.reader())).collect();
    let server = Mutex::new(server);

    let universe: Vec<u32> = (0..14).collect();
    let observed = fan_out(READERS + 1, |worker| {
        if worker == 0 {
            let mut server = server.lock().expect("writer lane");
            for batch in 0..BATCHES {
                let lo = SEED + batch * BATCH_ROWS;
                server
                    .ingest(census_rows(lo + BATCH_ROWS)[lo..].to_vec())
                    .unwrap();
                published
                    .lock()
                    .expect("publish log")
                    .push(snapshot_key(server.snapshot().as_ref()));
            }
            Vec::new()
        } else {
            let mut reader = lanes[worker - 1].lock().expect("reader lane");
            let mut seen = Vec::with_capacity(QUERIES_PER_READER);
            let mut last_epoch = 0u64;
            for q in 0..QUERIES_PER_READER {
                let basket = &universe[..1 + q % universe.len()];
                let hit = reader.match_basket(basket);
                let snap = hit.snapshot();
                assert!(
                    snap.epoch() >= last_epoch,
                    "reader {worker} saw epoch {} after {last_epoch}",
                    snap.epoch()
                );
                last_epoch = snap.epoch();
                seen.push(snapshot_key(snap.as_ref()));
            }
            seen
        }
    });

    let published = published.into_inner().expect("publish log");
    assert_eq!(published.len(), BATCHES + 1, "every batch published once");
    for (worker, seen) in observed.iter().enumerate().skip(1) {
        for key in seen {
            assert!(
                published.contains(key),
                "reader {worker} observed unpublished state {key:?} \
                 (published: {published:?})"
            );
        }
    }
    // The final epoch must have been reachable: the writer's last
    // publish carries every appended row.
    assert_eq!(
        published.last().unwrap().1,
        SEED + BATCHES * BATCH_ROWS,
        "last published snapshot spans all rows"
    );
}
