//! Crash-safe session recovery: the checkpoint/journal contract.
//!
//! The contract of `RuleMiner::checkpointing`: dropping a durable
//! session at *any* point and recovering its directory rebuilds exactly
//! the pre-crash session — database, lattice (including tombstoned slot
//! ids and generator tags), maintained bases, window state, and the TTL
//! batch ledger — over any engine backend, batch schedule, and window
//! policy, with **zero** support-engine calls during the restore. Full
//! state equality is asserted byte-for-byte on the session's canonical
//! wire form, so nothing the session persists can silently drift.
//!
//! The fault half of the contract: truncating the newest checkpoint or
//! journal at *every byte boundary* (and flipping bits, and dropping
//! the atomic rename) yields either an exact restore from the fallback
//! generation or a cleanly reported lost suffix / typed error — never a
//! panic, never a silently wrong session.
//!
//! Case counts respect the `PROPTEST_CASES` environment variable so the
//! 1-CPU suite stays inside its budget.

use proptest::prelude::*;
use rulebases::checkpoint::{
    write_snapshot, CheckpointPolicy, CheckpointedMiner, FaultFs, RecoveryError,
};
use rulebases::{RuleMiner, StreamingMiner, Window};
use rulebases_dataset::{EngineKind, MinSupport, TransactionDb};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The batch schedules the streaming suite pins: row-at-a-time, a ragged
/// prime, the 64-aligned shard quantum, and everything at once.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, usize::MAX];

/// Deterministic correlated rows over 14 items (the streaming suite's
/// generator): enough structure that checkpoints land across splits,
/// interpositions, class deaths, and generator retags.
fn census_rows(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|t| vec![t % 4, 4 + t % 3, 7 + t % 2, 9 + (t / 7) % 5])
        .collect()
}

/// A self-cleaning unique temp directory (the offline environment has no
/// tempfile crate).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static N: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "rulebases-recovery-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&path);
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// The JSON payload of a checkpoint file (everything after the header
/// line) — the session's canonical wire form.
fn read_payload(path: &Path) -> String {
    let bytes = fs::read(path).unwrap();
    let nl = bytes.iter().position(|&b| b == b'\n').unwrap();
    String::from_utf8(bytes[nl + 1..].to_vec()).unwrap()
}

/// A live session's canonical wire form, via a throwaway snapshot.
fn wire_of(session: &StreamingMiner) -> String {
    let dir = TempDir::new("wire");
    let path = write_snapshot(session, dir.path()).unwrap();
    read_payload(&path)
}

/// The checkpoint recovery folded for a freshly recovered miner — its
/// payload IS the recovered session's wire form.
fn folded_payload(miner: &CheckpointedMiner) -> String {
    read_payload(
        &miner
            .dir()
            .join(format!("checkpoint-{:06}.ckpt", miner.generation())),
    )
}

// One case pushes the same schedule through a durable session and a
// plain in-memory twin per backend, crashes the durable one, and demands
// the recovered wire form be byte-identical to the twin's.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn recovered_session_is_the_pre_crash_session(
        n_rows in 4usize..40,
        batch_idx in 0usize..4,
        window_idx in 0usize..3,
        shards in 1usize..=3,
        fold_every in 1usize..5,
    ) {
        let rows = census_rows(n_rows);
        let batch = BATCH_SIZES[batch_idx];
        let window = [Window::Unbounded, Window::Sliding(16), Window::Ttl(2)][window_idx];
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let label = format!("{kind} / batch {batch} / {window:?} / fold {fold_every}");
            let dir = TempDir::new("prop");
            let config = RuleMiner::new(MinSupport::Count(2))
                .min_confidence(0.5)
                .engine(kind.clone());
            let (ckpt, report) = config
                .checkpointing(TransactionDb::from_rows(vec![]), dir.path())
                .unwrap();
            prop_assert!(report.is_none(), "{}: fresh dir must not recover", label);
            let mut ckpt = ckpt.policy(CheckpointPolicy {
                every_batches: fold_every,
                every_journal_bytes: u64::MAX,
            });
            ckpt.set_window(window).unwrap();
            let mut twin = config
                .streaming(TransactionDb::from_rows(vec![]))
                .window(window);
            for chunk in rows.chunks(batch.min(rows.len())) {
                ckpt.push_batch(chunk.to_vec()).unwrap();
                twin.push_batch(chunk.to_vec()).unwrap();
            }
            drop(ckpt); // crash

            let (mut recovered, report) = CheckpointedMiner::recover(dir.path()).unwrap();
            prop_assert!(report.lost.is_none(), "{}: {:?}", label, report.lost);
            prop_assert_eq!(
                report.restore_engine_calls, 0,
                "{}: restore must not query the support engine", label
            );
            prop_assert_eq!(
                report.replay_engine_calls, 0,
                "{}: replay must stay on the delta path", label
            );

            // Full-state equality, byte for byte: db, lattice incl.
            // tombstones and generator tags, bases, window, TTL ledger.
            prop_assert_eq!(folded_payload(&recovered), wire_of(&twin), "{}", label);

            // The recovered session keeps streaming identically.
            let extra = census_rows(n_rows + 5).split_off(n_rows);
            let d1 = recovered.push_batch(extra.clone()).unwrap();
            let d2 = twin.push_batch(extra).unwrap();
            prop_assert_eq!(d1.n_objects, d2.n_objects, "{}", label);
            prop_assert_eq!(
                recovered.bases().dg.rules(),
                twin.bases().dg.rules(),
                "{}: DG basis after post-recovery push", label
            );
            prop_assert_eq!(
                recovered.bases().lux_reduced.rules(),
                twin.bases().lux_reduced.rules(),
                "{}: reduced Luxenburger basis after post-recovery push", label
            );
            prop_assert_eq!(wire_of(recovered.session()), wire_of(&twin), "{}", label);
        }
    }
}

/// The two-generation fixture every fault test corrupts: seed of 6 rows
/// (checkpoint 1), two journaled batches (journal 1), an explicit fold
/// (checkpoint 2), one more journaled batch (journal 2). Returns the
/// directory, the pristine file contents, and the expected wire forms
/// after batch 2 (`mid`) and batch 3 (`full`).
#[allow(clippy::type_complexity)]
fn two_generation_fixture() -> (TempDir, Vec<(PathBuf, Vec<u8>)>, String, String) {
    let rows = census_rows(12);
    let config = RuleMiner::new(MinSupport::Count(2)).min_confidence(0.5);
    let dir = TempDir::new("fault");
    let (ckpt, report) = config
        .checkpointing(TransactionDb::from_rows(rows[..6].to_vec()), dir.path())
        .unwrap();
    assert!(report.is_none());
    let mut ckpt = ckpt.policy(CheckpointPolicy {
        every_batches: usize::MAX,
        every_journal_bytes: u64::MAX,
    });
    ckpt.push_batch(rows[6..8].to_vec()).unwrap();
    ckpt.push_batch(rows[8..10].to_vec()).unwrap();
    ckpt.checkpoint_now().unwrap();
    assert_eq!(ckpt.generation(), 2);
    ckpt.push_batch(rows[10..12].to_vec()).unwrap();
    drop(ckpt); // crash

    let mut twin = config.streaming(TransactionDb::from_rows(rows[..6].to_vec()));
    twin.push_batch(rows[6..8].to_vec()).unwrap();
    twin.push_batch(rows[8..10].to_vec()).unwrap();
    let mid = wire_of(&twin);
    twin.push_batch(rows[10..12].to_vec()).unwrap();
    let full = wire_of(&twin);

    let files = fs::read_dir(dir.path())
        .unwrap()
        .map(|e| {
            let path = e.unwrap().path();
            let bytes = fs::read(&path).unwrap();
            (path, bytes)
        })
        .collect();
    (dir, files, mid, full)
}

/// Rewinds the fixture directory to its pristine post-crash contents
/// (recovery folds new generations and retires old ones, so every sweep
/// iteration starts from scratch).
fn reset_dir(dir: &Path, files: &[(PathBuf, Vec<u8>)]) {
    fs::remove_dir_all(dir).unwrap();
    fs::create_dir_all(dir).unwrap();
    for (path, bytes) in files {
        fs::write(path, bytes).unwrap();
    }
}

#[test]
fn truncating_the_newest_checkpoint_at_every_byte_falls_back_exactly() {
    let (dir, files, _mid, full) = two_generation_fixture();
    let ckpt2 = dir.path().join("checkpoint-000002.ckpt");
    let len = fs::read(&ckpt2).unwrap().len();
    for cut in 0..=len as u64 {
        reset_dir(dir.path(), &files);
        FaultFs::new().truncate_at(cut).apply_to(&ckpt2).unwrap();
        let (recovered, report) =
            CheckpointedMiner::recover(dir.path()).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        // Nothing is ever lost: a broken checkpoint 2 falls back to
        // checkpoint 1, whose journal still holds every folded batch.
        assert!(report.lost.is_none(), "cut {cut}: {:?}", report.lost);
        assert_eq!(report.restore_engine_calls, 0, "cut {cut}");
        if (cut as usize) < len {
            assert_eq!(report.checkpoint_seq, 1, "cut {cut}");
            assert!(!report.skipped.is_empty(), "cut {cut}: rejection recorded");
            assert_eq!(report.batches_replayed, 3, "cut {cut}");
        } else {
            assert_eq!(report.checkpoint_seq, 2, "uncut file must restore");
        }
        assert_eq!(folded_payload(&recovered), full, "cut {cut}");
    }
}

#[test]
fn truncating_the_newest_journal_at_every_byte_restores_or_names_the_loss() {
    let (dir, files, mid, full) = two_generation_fixture();
    let journal2 = dir.path().join("journal-000002.log");
    let len = fs::read(&journal2).unwrap().len();
    for cut in 0..=len as u64 {
        reset_dir(dir.path(), &files);
        FaultFs::new().truncate_at(cut).apply_to(&journal2).unwrap();
        let (recovered, report) =
            CheckpointedMiner::recover(dir.path()).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        assert_eq!(report.checkpoint_seq, 2, "cut {cut}");
        if cut == 0 {
            // A cleanly empty journal: the fold-time state, nothing lost.
            assert!(report.lost.is_none(), "cut 0");
            assert_eq!(folded_payload(&recovered), mid, "cut 0");
        } else if (cut as usize) < len {
            // A torn record: the loss names the file and the byte where
            // the valid prefix ends, and the restore is exactly that
            // prefix — never a half-applied batch.
            let lost = report.lost.as_ref().unwrap_or_else(|| panic!("cut {cut}"));
            assert_eq!(lost.path, journal2, "cut {cut}");
            assert_eq!(lost.valid_bytes, 0, "cut {cut}");
            assert_eq!(folded_payload(&recovered), mid, "cut {cut}");
        } else {
            assert!(report.lost.is_none(), "uncut journal");
            assert_eq!(folded_payload(&recovered), full, "uncut journal");
        }
    }
}

#[test]
fn flipping_bits_in_the_newest_checkpoint_never_goes_unnoticed() {
    let (dir, files, _mid, full) = two_generation_fixture();
    let ckpt2 = dir.path().join("checkpoint-000002.ckpt");
    let bytes = fs::read(&ckpt2).unwrap();
    let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    // Every 13th byte, every bit. A payload flip must always break the
    // FNV digest (which detects every single-bit flip) and fall back to
    // checkpoint 1; a header flip either breaks the frame parse (fall
    // back) or is semantically neutral — e.g. flipping the case of a
    // hex digit in the checksum field — in which case checkpoint 2
    // restores as written. Either way the recovered state is exact.
    for byte in (0..bytes.len() as u64).step_by(13) {
        for bit in 0..8 {
            reset_dir(dir.path(), &files);
            FaultFs::new().flip_bit(byte, bit).apply_to(&ckpt2).unwrap();
            let (recovered, report) = CheckpointedMiner::recover(dir.path())
                .unwrap_or_else(|e| panic!("byte {byte} bit {bit}: {e}"));
            if byte >= header_len as u64 {
                assert_eq!(report.checkpoint_seq, 1, "byte {byte} bit {bit}");
            }
            assert!(report.lost.is_none(), "byte {byte} bit {bit}");
            assert_eq!(folded_payload(&recovered), full, "byte {byte} bit {bit}");
        }
    }
}

#[test]
fn a_dropped_rename_leaves_the_previous_generation_authoritative() {
    let rows = census_rows(10);
    let config = RuleMiner::new(MinSupport::Count(2)).min_confidence(0.5);
    let dir = TempDir::new("rename");
    let (ckpt, _) = config
        .checkpointing(TransactionDb::from_rows(rows[..6].to_vec()), dir.path())
        .unwrap();
    let mut ckpt = ckpt.policy(CheckpointPolicy {
        every_batches: usize::MAX,
        every_journal_bytes: u64::MAX,
    });
    ckpt.push_batch(rows[6..10].to_vec()).unwrap();
    let tmp = ckpt.checkpoint_with(&FaultFs::new().drop_rename()).unwrap();
    assert!(tmp.extension().unwrap().to_str().unwrap().contains("tmp"));
    assert!(!dir.path().join("checkpoint-000002.ckpt").exists());
    assert_eq!(ckpt.generation(), 1, "a dropped rename must not commit");
    drop(ckpt); // crash between flush and rename

    let mut twin = config.streaming(TransactionDb::from_rows(rows[..6].to_vec()));
    twin.push_batch(rows[6..10].to_vec()).unwrap();

    let (recovered, report) = CheckpointedMiner::recover(dir.path()).unwrap();
    assert_eq!(report.checkpoint_seq, 1);
    assert!(report.lost.is_none());
    assert_eq!(report.batches_replayed, 1);
    assert_eq!(folded_payload(&recovered), wire_of(&twin));
}

#[test]
fn a_journal_gap_is_reported_as_the_lost_suffix() {
    let (dir, files, _mid, _full) = two_generation_fixture();
    reset_dir(dir.path(), &files);
    // Corrupt checkpoint 2 and remove journal 1: recovery falls back to
    // checkpoint 1, but the batches between checkpoints are gone, and
    // replaying journal 2 without them would be silently wrong — so the
    // replay stops at the gap and names it.
    FaultFs::new()
        .flip_bit(40, 3)
        .apply_to(&dir.path().join("checkpoint-000002.ckpt"))
        .unwrap();
    fs::remove_file(dir.path().join("journal-000001.log")).unwrap();
    let (_, report) = CheckpointedMiner::recover(dir.path()).unwrap();
    assert_eq!(report.checkpoint_seq, 1);
    assert_eq!(report.batches_replayed, 0);
    let lost = report.lost.expect("the gap must be reported");
    assert!(
        lost.detail.contains("generation 1 is missing"),
        "{}",
        lost.detail
    );
}

#[test]
fn an_unknown_format_version_is_skipped_with_a_typed_reason() {
    let (dir, files, _mid, full) = two_generation_fixture();
    reset_dir(dir.path(), &files);
    fs::write(
        dir.path().join("checkpoint-000003.ckpt"),
        b"rulebases-ckpt v9 len=0 fnv=0000000000000000\n",
    )
    .unwrap();
    let (recovered, report) = CheckpointedMiner::recover(dir.path()).unwrap();
    assert_eq!(report.checkpoint_seq, 2);
    assert!(report
        .skipped
        .iter()
        .any(|s| s.contains("format version 9")));
    assert!(report.lost.is_none());
    assert_eq!(folded_payload(&recovered), full);
}

#[test]
fn recovering_an_empty_directory_is_a_typed_error() {
    let dir = TempDir::new("empty");
    fs::create_dir_all(dir.path()).unwrap();
    match CheckpointedMiner::recover(dir.path()) {
        Err(RecoveryError::NoCheckpoint { .. }) => {}
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
    // A directory with a journal but no checkpoint is just as dead.
    fs::write(dir.path().join("journal-000001.log"), b"").unwrap();
    assert!(matches!(
        CheckpointedMiner::recover(dir.path()),
        Err(RecoveryError::NoCheckpoint { .. })
    ));
}

#[test]
fn open_resumes_an_existing_directory_and_ignores_the_seed() {
    let rows = census_rows(12);
    let config = RuleMiner::new(MinSupport::Count(2)).min_confidence(0.5);
    let dir = TempDir::new("resume");
    let (mut ckpt, _) = config
        .checkpointing(TransactionDb::from_rows(rows[..6].to_vec()), dir.path())
        .unwrap();
    ckpt.push_batch(rows[6..9].to_vec()).unwrap();
    drop(ckpt);

    let mut twin = config.streaming(TransactionDb::from_rows(rows[..6].to_vec()));
    twin.push_batch(rows[6..9].to_vec()).unwrap();

    // Re-opening with a different (wrong) seed must recover, not reseed.
    let (reopened, report) = config
        .checkpointing(TransactionDb::from_rows(rows[9..12].to_vec()), dir.path())
        .unwrap();
    let report = report.expect("an existing directory must recover");
    assert!(report.lost.is_none());
    assert_eq!(report.restore_engine_calls, 0);
    assert_eq!(folded_payload(&reopened), wire_of(&twin));
}

#[test]
fn a_serving_session_snapshots_into_the_same_format() {
    let rows = census_rows(10);
    let config = RuleMiner::new(MinSupport::Count(2)).min_confidence(0.5);
    let server = config.serving(TransactionDb::from_rows(rows.clone()));
    let dir = TempDir::new("serve");
    let path = server.checkpoint(dir.path()).unwrap();
    assert_eq!(read_payload(&path), wire_of(server.miner()));
    let (recovered, report) = CheckpointedMiner::recover(dir.path()).unwrap();
    assert!(report.lost.is_none());
    assert_eq!(report.restore_engine_calls, 0);
    assert_eq!(folded_payload(&recovered), wire_of(server.miner()));
}
