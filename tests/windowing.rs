//! Windowed-streaming equivalence and the expiry cost pins.
//!
//! The contract of `StreamingMiner::window`: after every push, a session
//! bounded by `Window::Sliding(n)` holds exactly the bases a one-shot
//! fused mine of the window's own rows computes — closed sets, Hasse
//! edges, the DG basis, and both Luxenburger bases — over *any* engine
//! backend and *any* batch schedule, for both absolute and rescaling
//! thresholds. `Window::Ttl(k)` does the same with whole batches as the
//! unit of aging. And the session must get there without ever re-mining:
//! expiry flows through the engine/lattice delta machinery, performing
//! zero support-engine calls (the `bases-window` bench pins the same
//! invariant at bench scale).
//!
//! Case counts respect the `PROPTEST_CASES` environment variable so the
//! 1-CPU suite stays inside its budget.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases::{MinedBases, PipelineKind, RuleMiner, Window};
use rulebases_dataset::{EngineKind, MinSupport, TransactionDb};

/// The batch schedules the streaming suite pins: row-at-a-time, a ragged
/// prime, the 64-aligned shard quantum, and everything at once.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, usize::MAX];

/// Deterministic correlated rows over 14 items (the streaming suite's
/// generator): enough structure that windows slide across splits,
/// interpositions, class deaths, and generator retags.
fn census_rows(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|t| vec![t % 4, 4 + t % 3, 7 + t % 2, 9 + (t / 7) % 5])
        .collect()
}

fn assert_windowed_matches_fresh(streamed: &MinedBases, fresh: &MinedBases, label: &str) {
    assert_eq!(
        streamed.closed.clone().into_sorted_vec(),
        fresh.closed.clone().into_sorted_vec(),
        "{label}: closed sets"
    );
    assert_eq!(
        streamed.lattice.edges().collect::<Vec<_>>(),
        fresh.lattice.edges().collect::<Vec<_>>(),
        "{label}: Hasse edges"
    );
    assert_eq!(streamed.dg.rules(), fresh.dg.rules(), "{label}: DG basis");
    assert_eq!(
        streamed.lux_full.rules(),
        fresh.lux_full.rules(),
        "{label}: full Luxenburger basis"
    );
    assert_eq!(
        streamed.lux_reduced.rules(),
        fresh.lux_reduced.rules(),
        "{label}: reduced Luxenburger basis"
    );
    assert_eq!(streamed.min_count, fresh.min_count, "{label}: min_count");
}

// Each case mines one fused oracle per batch boundary per backend, so the
// case counts are set explicitly (and capped by `PROPTEST_CASES`) to keep
// the 1-CPU suite inside its budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sliding_window_matches_fresh_mine_of_the_tail(
        rows in vec(vec(0u32..9, 0..6), 1..50),
        window in 1usize..16,
        min_count in 1u64..3,
        fractional in 0usize..2,
        minconf_idx in 0usize..3,
        batch_idx in 0usize..4,
        shards in 1usize..=3,
    ) {
        let minsup = if fractional == 1 {
            MinSupport::Fraction(0.25)
        } else {
            MinSupport::Count(min_count)
        };
        let minconf = [0.0, 0.5, 1.0][minconf_idx];
        let batch = BATCH_SIZES[batch_idx];
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let miner = RuleMiner::new(minsup)
                .min_confidence(minconf)
                .engine(kind.clone());
            let fused = miner.clone().pipeline(PipelineKind::Fused);
            let mut stream = miner
                .streaming(TransactionDb::from_rows(vec![]))
                .window(Window::Sliding(window));
            let mut seen = 0;
            for chunk in rows.chunks(batch.min(rows.len())) {
                let delta = stream.push_batch(chunk.to_vec()).unwrap();
                seen += chunk.len();
                let in_window = seen.min(window);
                prop_assert_eq!(delta.appended, chunk.len());
                prop_assert_eq!(delta.expired, (seen.min(window + chunk.len())) - in_window);
                prop_assert_eq!(delta.n_objects, in_window);
                prop_assert_eq!(stream.n_objects(), in_window);
                let tail = rows[seen - in_window..seen].to_vec();
                let fresh = fused.mine(TransactionDb::from_rows(tail));
                assert_windowed_matches_fresh(
                    stream.bases(),
                    &fresh,
                    &format!("{kind} / window {window} / batch {batch} / seen {seen}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn ttl_window_matches_fresh_mine_of_the_kept_batches(
        batches in vec(vec(vec(0u32..9, 0..6), 0..8), 1..10),
        keep in 1usize..4,
        min_count in 1u64..3,
    ) {
        // Ttl(k) retains whole batches: after each push the state must
        // equal a fresh mine of the newest k non-empty batches' rows
        // (empty pushes neither age the window nor advance the epoch).
        let miner = RuleMiner::new(MinSupport::Count(min_count)).min_confidence(0.5);
        let fused = miner.clone().pipeline(PipelineKind::Fused);
        let mut stream = miner
            .streaming(TransactionDb::from_rows(vec![]))
            .window(Window::Ttl(keep));
        let mut kept: Vec<Vec<Vec<u32>>> = Vec::new();
        for batch in &batches {
            let delta = stream.push_batch(batch.clone()).unwrap();
            if batch.is_empty() {
                prop_assert_eq!(delta.appended, 0);
                prop_assert_eq!(delta.expired, 0);
                continue;
            }
            kept.push(batch.clone());
            let expired: usize = if kept.len() > keep {
                kept.drain(..kept.len() - keep).map(|b| b.len()).sum()
            } else {
                0
            };
            prop_assert_eq!(delta.expired, expired);
            let window_rows: Vec<Vec<u32>> = kept.iter().flatten().cloned().collect();
            prop_assert_eq!(stream.n_objects(), window_rows.len());
            let fresh = fused.mine(TransactionDb::from_rows(window_rows));
            assert_windowed_matches_fresh(stream.bases(), &fresh, &format!("keep {keep}"));
        }
    }
}

/// The acceptance pin at test scale: replaying a sliding window never
/// re-mines — base maintenance (appends *and* expiries) runs entirely on
/// the lattice's set algebra, so the whole replay performs zero
/// support-engine calls, and the retained storage stays bounded by the
/// window rather than the stream length.
#[test]
fn sliding_replay_performs_zero_engine_calls_and_bounded_storage() {
    let rows = census_rows(512);
    let miner = RuleMiner::new(MinSupport::Fraction(0.1)).min_confidence(0.6);
    let mut stream = miner
        .clone()
        .streaming(TransactionDb::from_rows(vec![]))
        .window(Window::Sliding(64));
    for chunk in rows.chunks(32) {
        let before = stream.context().closure_cache_stats().engine_calls();
        stream.push_batch(chunk.to_vec()).unwrap();
        let after = stream.context().closure_cache_stats().engine_calls();
        assert_eq!(after, before, "expiring push queried the engine");
    }
    assert_eq!(stream.n_objects(), 64);

    // Storage bound: the windowed view retains a bounded multiple of the
    // window's own bytes (segment granularity and compaction hysteresis
    // allow slack, not growth with the stream).
    let windowed = stream.db().storage_bytes();
    let fresh = TransactionDb::from_rows(rows[rows.len() - 64..].to_vec()).storage_bytes();
    assert!(
        windowed <= 4 * fresh,
        "windowed storage {windowed} not bounded by the window (fresh tail: {fresh})"
    );
    // And an unbounded session over the same replay retains strictly more.
    let mut unbounded = miner.streaming(TransactionDb::from_rows(vec![]));
    for chunk in rows.chunks(32) {
        unbounded.push_batch(chunk.to_vec()).unwrap();
    }
    assert!(
        windowed < unbounded.db().storage_bytes(),
        "expiry must reclaim storage"
    );
}

/// A batch wider than the window: every row still inserts (the delta
/// reports the full append), then the prefix — including the batch's own
/// head — expires, leaving exactly the batch's tail.
#[test]
fn batch_larger_than_window_keeps_its_tail() {
    let miner = RuleMiner::new(MinSupport::Count(1)).min_confidence(0.5);
    let mut stream = miner
        .clone()
        .streaming(TransactionDb::from_rows(vec![]))
        .window(Window::Sliding(4));
    let rows = census_rows(16);
    let delta = stream.push_batch(rows.clone()).unwrap();
    assert_eq!(delta.appended, 16);
    assert_eq!(delta.expired, 12);
    assert_eq!(stream.n_objects(), 4);
    let fresh = miner
        .pipeline(PipelineKind::Fused)
        .mine(TransactionDb::from_rows(rows[12..].to_vec()));
    assert_windowed_matches_fresh(stream.bases(), &fresh, "oversized batch");
}

/// A seed wider than the window is trimmed by the first push, not at
/// configuration time.
#[test]
fn oversized_seed_trims_on_first_push() {
    let rows = census_rows(20);
    let miner = RuleMiner::new(MinSupport::Count(1)).min_confidence(0.5);
    let mut stream = miner
        .clone()
        .streaming(TransactionDb::from_rows(rows.clone()))
        .window(Window::Sliding(8));
    assert_eq!(stream.n_objects(), 20, "window() itself must not mutate");
    let delta = stream.push_batch(vec![vec![0, 4, 7, 9]]).unwrap();
    assert_eq!(delta.appended, 1);
    assert_eq!(delta.expired, 13);
    assert_eq!(stream.n_objects(), 8);
    let mut tail = rows[13..].to_vec();
    tail.push(vec![0, 4, 7, 9]);
    let fresh = miner
        .pipeline(PipelineKind::Fused)
        .mine(TransactionDb::from_rows(tail));
    assert_windowed_matches_fresh(stream.bases(), &fresh, "oversized seed");
}
