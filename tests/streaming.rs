//! Streaming-vs-batch equivalence and the streaming cost pin.
//!
//! The contract of `RuleMiner::streaming`: replaying a context in *any*
//! batch schedule, over *any* engine backend, lands in exactly the state
//! the one-shot fused pipeline computes on the full context — closed
//! sets, Hasse edges, the DG basis, and both Luxenburger bases. And it
//! must get there cheaper: `push_batch` patches the maintained lattice
//! with set algebra, so a whole replay performs strictly fewer engine
//! calls than re-mining the grown context from scratch once per batch
//! (the `bases-stream` bench pins the same invariant at bench scale).
//!
//! Case counts respect the `PROPTEST_CASES` environment variable so the
//! 1-CPU suite stays inside its budget.

use proptest::collection::vec;
use proptest::prelude::*;
use rulebases::stream::{BasesDelta, RuleSetDelta};
use rulebases::{MinedBases, PipelineKind, RuleMiner};
use rulebases_dataset::{EngineKind, MinSupport, MiningContext, TransactionDb};

/// The batch schedules the issue calls out: row-at-a-time, a ragged
/// prime, the 64-aligned shard quantum, and the whole database at once.
const BATCH_SIZES: [usize; 4] = [1, 7, 64, usize::MAX];

/// Deterministic correlated rows over 14 items: four attribute groups, so
/// the closed-set lattice stays compact while still having structure
/// (splits, interpositions, generator births) at every prefix.
fn census_rows(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|t| vec![t % 4, 4 + t % 3, 7 + t % 2, 9 + (t / 7) % 5])
        .collect()
}

fn assert_stream_matches_oracle(streamed: &MinedBases, oracle: &MinedBases, label: &str) {
    assert_eq!(
        streamed.closed.clone().into_sorted_vec(),
        oracle.closed.clone().into_sorted_vec(),
        "{label}: closed sets"
    );
    assert_eq!(
        streamed.lattice.edges().collect::<Vec<_>>(),
        oracle.lattice.edges().collect::<Vec<_>>(),
        "{label}: Hasse edges"
    );
    assert_eq!(streamed.dg.rules(), oracle.dg.rules(), "{label}: DG basis");
    assert_eq!(
        streamed.lux_full.rules(),
        oracle.lux_full.rules(),
        "{label}: full Luxenburger basis"
    );
    assert_eq!(
        streamed.lux_reduced.rules(),
        oracle.lux_reduced.rules(),
        "{label}: reduced Luxenburger basis"
    );
    assert_eq!(streamed.min_count, oracle.min_count, "{label}: min_count");
}

/// Order-insensitive equality of a direct (lattice-level) rule delta and
/// the snapshot-diff oracle's.
fn assert_rule_delta_eq(direct: &RuleSetDelta, oracle: &RuleSetDelta, label: &str) {
    let sorted = |rules: &[rulebases::Rule]| {
        let mut v = rules.to_vec();
        v.sort();
        v
    };
    assert_eq!(
        sorted(&direct.added),
        sorted(&oracle.added),
        "{label}: added"
    );
    assert_eq!(
        sorted(&direct.removed),
        sorted(&oracle.removed),
        "{label}: removed"
    );
    assert_eq!(direct.restated, oracle.restated, "{label}: restated");
}

fn assert_delta_matches_oracle(direct: &BasesDelta, oracle: &BasesDelta, label: &str) {
    assert_eq!(direct.n_objects, oracle.n_objects, "{label}: n_objects");
    assert_eq!(direct.min_count, oracle.min_count, "{label}: min_count");
    assert_eq!(
        direct.closed_added, oracle.closed_added,
        "{label}: closed_added"
    );
    assert_eq!(
        direct.closed_removed, oracle.closed_removed,
        "{label}: closed_removed"
    );
    assert_rule_delta_eq(&direct.dg, &oracle.dg, &format!("{label}: dg"));
    assert_rule_delta_eq(
        &direct.lux_full,
        &oracle.lux_full,
        &format!("{label}: lux_full"),
    );
    assert_rule_delta_eq(
        &direct.lux_reduced,
        &oracle.lux_reduced,
        &format!("{label}: lux_reduced"),
    );
}

// The delta-vs-oracle property mines two fused oracles per batch, so its
// case count is set explicitly (and capped by `PROPTEST_CASES`) to keep
// the 1-CPU suite inside its budget.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn per_batch_deltas_match_the_snapshot_diff_oracle(
        rows in vec(vec(0u32..9, 0..6), 1..40),
        min_count in 1u64..3,
        fractional in 0usize..2,
        minconf_idx in 0usize..3,
        batch_idx in 0usize..4,
        shards in 1usize..=3,
    ) {
        // PR 4 computed each BasesDelta by materializing the full bases
        // before and after the batch and set-diffing them; that
        // formulation survives as BasesDelta::between, the oracle. The
        // production path must report exactly the same movement from the
        // lattice's touched-class set alone — over every backend and
        // batch schedule, for both absolute and rescaling thresholds.
        let minsup = if fractional == 1 {
            MinSupport::Fraction(0.25)
        } else {
            MinSupport::Count(min_count)
        };
        let minconf = [0.0, 0.5, 1.0][minconf_idx];
        let batch = BATCH_SIZES[batch_idx];
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let miner = RuleMiner::new(minsup)
                .min_confidence(minconf)
                .engine(kind.clone());
            let fused = miner.clone().pipeline(PipelineKind::Fused);
            let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
            let mut seen = 0;
            for chunk in rows.chunks(batch.min(rows.len())) {
                let before = fused.mine(TransactionDb::from_rows(rows[..seen].to_vec()));
                seen += chunk.len();
                let after = fused.mine(TransactionDb::from_rows(rows[..seen].to_vec()));
                let direct = stream.push_batch(chunk.to_vec()).unwrap();
                let oracle = BasesDelta::between(&before, &after, direct.epoch, chunk.len(), 0);
                assert_delta_matches_oracle(
                    &direct,
                    &oracle,
                    &format!("{kind} / batch {batch} / prefix {seen}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn streaming_replay_matches_one_shot_fused(
        rows in vec(vec(0u32..9, 0..6), 1..70),
        min_count in 1u64..4,
        minconf_idx in 0usize..3,
        batch_idx in 0usize..4,
        shards in 1usize..=4,
    ) {
        let minconf = [0.0, 0.5, 1.0][minconf_idx];
        let batch = BATCH_SIZES[batch_idx];
        let mut grid: Vec<EngineKind> = EngineKind::BACKENDS.to_vec();
        grid.push(EngineKind::Sharded {
            shards,
            inner: Box::new(EngineKind::Auto),
        });
        for kind in grid {
            let miner = RuleMiner::new(MinSupport::Count(min_count))
                .min_confidence(minconf)
                .engine(kind.clone());
            let oracle = miner
                .clone()
                .pipeline(PipelineKind::Fused)
                .mine(TransactionDb::from_rows(rows.clone()));
            let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
            for chunk in rows.chunks(batch.min(rows.len())) {
                stream.push_batch(chunk.to_vec()).unwrap();
            }
            assert_stream_matches_oracle(
                stream.bases(),
                &oracle,
                &format!("{kind} / batch {batch}"),
            );
            // The derived frequent sets ride along.
            prop_assert_eq!(stream.bases().frequent.len(), oracle.frequent.len());
        }
    }

    #[test]
    fn streaming_with_fractional_threshold_tracks_rescaling(
        rows in vec(vec(0u32..8, 0..5), 2..50),
        batch_idx in 0usize..4,
    ) {
        // A fractional threshold changes its absolute value as rows
        // arrive; after the replay the state must equal the oracle on the
        // final context — including the rescaled min_count.
        let batch = BATCH_SIZES[batch_idx];
        let miner = RuleMiner::new(MinSupport::Fraction(0.3)).min_confidence(0.6);
        let oracle = miner
            .clone()
            .pipeline(PipelineKind::Fused)
            .mine(TransactionDb::from_rows(rows.clone()));
        let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
        for chunk in rows.chunks(batch.min(rows.len())) {
            stream.push_batch(chunk.to_vec()).unwrap();
        }
        assert_stream_matches_oracle(stream.bases(), &oracle, &format!("batch {batch}"));
    }
}

/// The acceptance pin: maintaining the bases over a batched replay costs
/// strictly fewer engine calls than re-mining the grown context from
/// scratch at every batch — the `push_batch` path answers out of the
/// maintained lattice, not the engine.
#[test]
fn streaming_uses_strictly_fewer_engine_calls_than_remining() {
    let rows = census_rows(256);
    let miner = RuleMiner::new(MinSupport::Fraction(0.1)).min_confidence(0.6);

    let mut stream = miner.streaming(TransactionDb::from_rows(vec![]));
    let mut streaming_calls = 0u64;
    let mut remining_calls = 0u64;
    let mut seen = 0;
    for chunk in rows.chunks(64) {
        let before = stream.context().closure_cache_stats().engine_calls();
        stream.push_batch(chunk.to_vec()).unwrap();
        streaming_calls += stream.context().closure_cache_stats().engine_calls() - before;
        seen += chunk.len();

        // The alternative: re-mine the grown prefix from scratch.
        let ctx = MiningContext::new(TransactionDb::from_rows(rows[..seen].to_vec()));
        let remined = miner
            .clone()
            .pipeline(PipelineKind::Fused)
            .mine_context(&ctx);
        remining_calls += ctx.closure_cache_stats().engine_calls();

        // Same answer at every batch boundary.
        assert_stream_matches_oracle(stream.bases(), &remined, &format!("prefix {seen}"));
    }
    assert!(
        streaming_calls < remining_calls,
        "streaming must perform strictly fewer engine calls: \
         streaming {streaming_calls} !< re-mining {remining_calls}"
    );
}

/// The zero-copy acceptance pin at the session level: `push_batch`
/// performs no full-CSR clone and no full-shard refresh — a 1-row append
/// against a 4096-row prefix copies a constant-bounded number of row
/// bytes (the same number a 512-row prefix pays), every pre-append
/// storage segment survives by identity, and a universe-growing append
/// rewrites none of them.
#[test]
fn push_batch_copies_batch_sized_bytes_regardless_of_prefix() {
    let miner = RuleMiner::new(MinSupport::Fraction(0.1)).min_confidence(0.6);
    let mut copied_per_prefix = Vec::new();
    for prefix in [512usize, 4096] {
        let mut stream = miner.streaming(TransactionDb::from_rows(census_rows(prefix)));
        let addrs_before = stream.db().segment_addrs();
        let bytes_before = stream.context().closure_cache_stats().bytes_copied;
        stream.push_batch(vec![vec![0, 4, 7, 9]]).unwrap();
        let copied = stream.context().closure_cache_stats().bytes_copied - bytes_before;
        assert!(copied > 0, "the engine reads the appended row");
        assert!(
            copied < 128,
            "1-row push against a {prefix}-row prefix copied {copied} bytes"
        );
        // One new segment; every prefix segment shared, not copied.
        let addrs_after = stream.db().segment_addrs();
        assert_eq!(addrs_after.len(), addrs_before.len() + 1, "prefix {prefix}");
        assert_eq!(&addrs_after[..addrs_before.len()], &addrs_before[..]);
        copied_per_prefix.push(copied);
    }
    assert_eq!(
        copied_per_prefix[0], copied_per_prefix[1],
        "per-batch bytes must be independent of the prefix length"
    );

    // Universe growth: new item id 20 widens the view; no segment moves.
    let mut stream = miner.streaming(TransactionDb::from_rows(census_rows(512)));
    let addrs_before = stream.db().segment_addrs();
    stream.push_batch(vec![vec![0, 20]]).unwrap();
    assert_eq!(stream.db().n_items(), 21);
    let addrs_after = stream.db().segment_addrs();
    assert_eq!(&addrs_after[..addrs_before.len()], &addrs_before[..]);
}

/// `EngineKind::Auto` resolves once, at engine construction, and the
/// resolved backend is observable through the context.
#[test]
fn auto_resolution_is_exposed_and_stable_across_batches() {
    let miner = RuleMiner::new(MinSupport::Count(2));
    let mut stream = miner.streaming(TransactionDb::from_rows(census_rows(32)));
    assert_eq!(stream.context().resolved_kind(), EngineKind::Dense);
    stream.push_batch(census_rows(16)).unwrap();
    // A flat engine never re-resolves mid-stream (only the sharded
    // backend re-evaluates its tail shard, tested in the dataset crate).
    assert_eq!(stream.context().resolved_kind(), EngineKind::Dense);
    assert_eq!(stream.context().epoch(), 1);

    let explicit = RuleMiner::new(MinSupport::Count(2))
        .engine(EngineKind::TidList)
        .streaming(TransactionDb::from_rows(census_rows(8)));
    assert_eq!(explicit.context().resolved_kind(), EngineKind::TidList);
}
