//! Rule explorer: Theorems 1 and 2 in action.
//!
//! Picks arbitrary candidate rules and answers, *using only the two
//! bases*: is the rule exact? approximate? with what support and
//! confidence? Every answer is then cross-checked against the raw data.
//!
//! ```bash
//! cargo run --example rule_explorer
//! ```

use rulebases::{ApproxDerivation, MinSupport, RuleMiner};
use rulebases_dataset::{paper_example, Itemset, MiningContext};

fn main() {
    let db = paper_example();
    let dict = db.dictionary().expect("labels").clone();
    let ctx = MiningContext::new(db.clone());

    let bases = RuleMiner::new(MinSupport::Fraction(0.4))
        .min_confidence(0.0) // keep every basis edge: we want full derivability
        .mine(db);
    let engine = ApproxDerivation::new(&bases.lux_reduced, &bases.dg);

    // Candidate rules to interrogate, as (antecedent, consequent) id sets.
    let candidates: [(&[u32], &[u32]); 6] = [
        (&[2], &[5]),       // B → E     (exact)
        (&[1], &[3]),       // A → C     (exact)
        (&[3], &[1]),       // C → A     (approximate, 3/4)
        (&[3], &[1, 2, 5]), // C → ABE   (approximate, 1/2, multi-hop)
        (&[1, 3], &[2, 5]), // AC → BE   (approximate, 2/3)
        (&[5], &[4]),       // E → D     (not valid at this minsup)
    ];

    for (ant, cons) in candidates {
        let x = Itemset::from_ids(ant.iter().copied());
        let z = Itemset::from_ids(cons.iter().copied());
        print!("{} → {} : ", x.display(&dict), z.display(&dict));

        // 1. Exact? (Theorem 1: Armstrong derivation from the DG basis.)
        if bases.dg.derives(&x, &z) {
            let support = ctx.support(&x);
            println!("EXACT (derived from DG basis), supp={support}");
            assert_eq!(ctx.support(&x.union(&z)), support, "cross-check");
            continue;
        }

        // 2. Approximate? (Theorem 2: path product in the reduced basis.)
        match engine.derive(&x, &z) {
            Some(rule) => {
                println!(
                    "approximate, supp={} conf={:.3} (derived from Luxenburger basis)",
                    rule.support,
                    rule.confidence()
                );
                // Cross-check against the raw context.
                let xz = x.union(&z);
                assert_eq!(rule.support, ctx.support(&xz), "support cross-check");
                let direct_conf = ctx.support(&xz) as f64 / ctx.support(&x) as f64;
                assert!((rule.confidence() - direct_conf).abs() < 1e-9);
            }
            None => {
                println!("not derivable — not a frequent rule at minsup 40%");
                // Cross-check: the spanned set is indeed infrequent.
                assert!(ctx.support(&x.union(&z)) < bases.min_count);
            }
        }
    }

    println!("\nall derivations cross-checked against the raw context ✓");
}
