//! Market-basket scenario on sparse synthetic data.
//!
//! The sparse regime of the paper's evaluation: IBM-Quest-style baskets
//! (T10I4 profile). On weakly correlated data most frequent itemsets are
//! already closed, so the bases buy little — the interesting contrast to
//! the dense examples. This example mines rules, ranks them by lift, and
//! prints the basis/baseline sizes.
//!
//! ```bash
//! cargo run --release --example market_basket
//! ```

use rulebases::{MinSupport, RuleMetrics, RuleMiner};
use rulebases_dataset::generator::QuestConfig;
use rulebases_dataset::{DatasetStats, MiningContext};

fn main() {
    let db = QuestConfig::t10i4(5_000, 42).generate();
    println!("synthetic baskets: {}", DatasetStats::compute(&db));

    let ctx = MiningContext::new(db);
    let bases = RuleMiner::new(MinSupport::Fraction(0.01))
        .min_confidence(0.6)
        .mine_context(&ctx);

    println!(
        "minsup 1%: {} frequent itemsets, {} closed ({:.2}x compression)",
        bases.frequent.len(),
        bases.n_closed_nonempty(),
        bases.frequent.len() as f64 / bases.n_closed_nonempty().max(1) as f64
    );

    // Rank the valid rules by lift.
    let mut scored: Vec<_> = bases
        .all_valid_rules()
        .into_iter()
        .map(|rule| {
            let consequent_support = ctx.support(&rule.consequent);
            let metrics = RuleMetrics::compute(&rule, consequent_support, ctx.n_objects());
            (rule, metrics)
        })
        .collect();
    scored.sort_by(|a, b| b.1.lift.total_cmp(&a.1.lift));

    println!("\ntop rules by lift (minconf 60%):");
    for (rule, metrics) in scored.iter().take(10) {
        println!(
            "  {rule}  lift={:.2} conviction={:.2}",
            metrics.lift, metrics.conviction
        );
    }

    let report = bases.report("T10I4-5K");
    println!("\n{}", rulebases::BasisReport::header());
    println!("{report}");
    println!(
        "\nsparse-regime observation: |F|/|FC| = {:.2} (close to 1 — weak correlation)",
        report.n_frequent as f64 / report.n_closed.max(1) as f64
    );
}
