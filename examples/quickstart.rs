//! Quickstart: the paper's running example, end to end.
//!
//! Mines the five-object context used throughout the Pasquier/Taouil/
//! Bastide/Lakhal papers, prints the frequent closed itemsets, both rule
//! bases, and shows that the bases regenerate every rule.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use rulebases::{MinSupport, RuleMiner};
use rulebases_dataset::paper_example;

fn main() {
    let db = paper_example();
    let dict = db.dictionary().expect("paper example ships labels").clone();

    println!("context: 5 objects over items A..E");
    for (i, t) in db.iter().enumerate() {
        let labels: Vec<&str> = t.iter().map(|&it| dict.label(it).unwrap()).collect();
        println!("  o{} = {{{}}}", i + 1, labels.join(", "));
    }

    let bases = RuleMiner::new(MinSupport::Fraction(0.4))
        .min_confidence(0.5)
        .mine(db);

    println!("\nfrequent closed itemsets (minsup 40%):");
    for (set, support) in bases.closed.iter() {
        println!("  {}  supp={}", set.display(&dict), support);
    }

    println!(
        "\nDuquenne-Guigues basis ({} rules for {} exact rules):",
        bases.dg.len(),
        bases.exact_rules().len()
    );
    for rule in bases.dg.rules() {
        println!("  {}", rule.display(&dict));
    }

    let reduced = bases.luxenburger_reduced_rules();
    println!(
        "\nreduced Luxenburger basis ({} rules for {} approximate rules at minconf 50%):",
        reduced.len(),
        bases.approximate_rules().len()
    );
    for rule in &reduced {
        println!("  {}", rule.display(&dict));
    }

    // The headline claim, executed: both bases regenerate everything.
    assert_eq!(bases.derive_exact_rules(), bases.exact_rules());
    assert_eq!(bases.derive_approximate_rules(), bases.approximate_rules());
    println!("\nderivation check: all rules reconstructed from the bases ✓");

    println!("\n{}", rulebases::BasisReport::header());
    println!("{}", bases.report("paper-example"));
}
