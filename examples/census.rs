//! Census scenario: dense correlated data, where the bases shine.
//!
//! The paper family's census extracts (C20D10K / C73D10K from PUMS) are
//! the motivating case: one item per (attribute, value) pair makes every
//! row the same length and attributes strongly correlated, so the number
//! of rules explodes while the closed-set bases stay small. This example
//! sweeps minconf and prints the all-rules vs bases counts.
//!
//! ```bash
//! cargo run --release --example census
//! ```

use rulebases::{count_all_rules, MinSupport, RuleMiner};
use rulebases_dataset::generator::census_like;
use rulebases_dataset::DatasetStats;

fn main() {
    let db = census_like(2_000, 20, 0xC20);
    println!("census-like data: {}", DatasetStats::compute(&db));
    let dict = db.dictionary().expect("census data ships labels").clone();

    // Mine at the *floor* of the sweep below so the reduced basis keeps
    // every edge the per-minconf rows need.
    let bases = RuleMiner::new(MinSupport::Fraction(0.7))
        .min_confidence(0.7)
        .mine(db);

    println!(
        "\nminsup 70%: |F| = {}, |FC| = {} ({:.1}x compression)",
        bases.frequent.len(),
        bases.n_closed_nonempty(),
        bases.frequent.len() as f64 / bases.n_closed_nonempty().max(1) as f64
    );

    println!(
        "\nDuquenne-Guigues basis: {} rules stand for {} exact rules",
        bases.dg.len(),
        rulebases::count_exact_rules(&bases.frequent, &bases.closed)
    );
    for rule in bases.dg.rules().iter().take(8) {
        println!("  {}", rule.display(&dict));
    }
    if bases.dg.len() > 8 {
        println!("  … and {} more", bases.dg.len() - 8);
    }

    println!("\nminconf sweep (all valid rules vs DG + reduced Luxenburger):");
    println!(
        "{:>8} {:>12} {:>8} {:>8}",
        "minconf", "all rules", "bases", "factor"
    );
    for minconf in [1.0, 0.95, 0.9, 0.8, 0.7] {
        let n_all = count_all_rules(&bases.frequent, minconf);
        let lux = rulebases::LuxenburgerBasis::full(&bases.closed, minconf, false);
        let reduced: usize = bases
            .lux_reduced
            .iter()
            .filter(|r| !r.antecedent.is_empty() && r.confidence() >= minconf)
            .count();
        let n_bases = bases.dg.len() + reduced;
        println!(
            "{:>7.0}% {:>12} {:>8} {:>8.1}  (full Lux: {})",
            minconf * 100.0,
            n_all,
            n_bases,
            n_all as f64 / n_bases.max(1) as f64,
            lux.len(),
        );
    }
}
