//! Mushroom scenario: exploring the iceberg lattice.
//!
//! Walks the frequent-closed-itemset lattice of a MUSHROOMS-like dense
//! dataset: bottom element, covers, maximal sets, and the correspondence
//! between lattice edges and the reduced Luxenburger basis.
//!
//! ```bash
//! cargo run --release --example mushroom
//! ```

use rulebases::{MinSupport, RuleMiner};
use rulebases_dataset::generator::mushroom_like_scaled;
use rulebases_dataset::DatasetStats;

fn main() {
    let db = mushroom_like_scaled(2_000, 0x8124);
    println!("mushroom-like data: {}", DatasetStats::compute(&db));
    let dict = db.dictionary().expect("generator ships labels").clone();

    let bases = RuleMiner::new(MinSupport::Fraction(0.5))
        .min_confidence(0.7)
        .mine(db);
    let lattice = &bases.lattice;

    println!(
        "\niceberg lattice at minsup 50%: {} closed sets, {} Hasse edges",
        lattice.n_nodes(),
        lattice.n_edges()
    );

    // Walk upward from the bottom.
    let bottom = lattice.bottom();
    let (bottom_set, bottom_support) = lattice.node(bottom);
    println!(
        "\nbottom h(∅) = {} (supp {})",
        bottom_set.display(&dict),
        bottom_support
    );
    println!("its upper covers:");
    for &cover in lattice.upper_covers(bottom) {
        let (set, support) = lattice.node(cover);
        println!(
            "  {}  supp={}  ({} covers above)",
            set.display(&dict),
            support,
            lattice.upper_covers(cover).len()
        );
    }

    let maximal = lattice.maximal();
    println!(
        "\n{} maximal frequent closed itemsets; largest:",
        maximal.len()
    );
    let mut by_size: Vec<usize> = maximal;
    by_size.sort_by_key(|&i| std::cmp::Reverse(lattice.node(i).0.len()));
    for &idx in by_size.iter().take(3) {
        let (set, support) = lattice.node(idx);
        println!("  {}  supp={}", set.display(&dict), support);
    }

    // Every lattice edge is a reduced-basis rule (above the threshold).
    let reduced = bases.luxenburger_reduced_rules();
    println!(
        "\nreduced Luxenburger basis: {} of {} lattice edges pass minconf 70%",
        reduced.len(),
        lattice.n_edges()
    );
    for rule in reduced.iter().take(5) {
        println!("  {}", rule.display(&dict));
    }

    println!(
        "\nDG basis: {} exact rules capture the attribute dependencies:",
        bases.dg.len()
    );
    for rule in bases.dg.rules().iter().take(5) {
        println!("  {}", rule.display(&dict));
    }
}
